//! Arena-GC invariants across an incremental bound walk.
//!
//! The acceptance property of the clause-arena garbage collector at the
//! `bmc` layer: walking a proof incrementally through bounds `k = 1..=4` —
//! the exact usage pattern of the UPEC engine — keeps the solver's
//! wasted-hole ratio below the documented 25% bound at every bound, while
//! database reductions and compacting collections fire mid-session and
//! verdicts stay correct. A deliberately tiny learnt budget makes reduction
//! constant instead of rare, so the walk exercises many collections.

use bmc::{UnrollOptions, Unrolling};
use rtl::{Netlist, SignalId};

/// Two identical nonlinear mixing registers, constrained equal at frame 0
/// through *clauses* (not frame-0 aliases), so the equivalence proof at
/// every frame has to reason through the adder/xor cones instead of
/// collapsing structurally. Returns `(netlist, r1, r2, differ)`.
fn mixer_pair() -> (Netlist, SignalId, SignalId, SignalId) {
    let width = 10u32;
    let mut n = Netlist::new("mixer_pair");
    let x = n.input("x", width);
    let r1 = n.register("r1", width);
    let r2 = n.register("r2", width);
    let three = n.lit(3, width);
    let one = n.lit(1, width);
    let step = |n: &mut Netlist, r: SignalId| {
        let sum = n.add(r, x);
        let shifted = n.shl(sum, three);
        let mixed = n.xor(sum, shifted);
        n.add(mixed, one)
    };
    let n1 = step(&mut n, r1.value());
    let n2 = step(&mut n, r2.value());
    n.set_next(r1, n1);
    n.set_next(r2, n2);
    let differ = n.ne(r1.value(), r2.value());
    n.output("differ", differ);
    (n, r1.value(), r2.value(), differ)
}

#[test]
fn incremental_walk_keeps_waste_ratio_bounded() {
    let (netlist, r1, r2, differ) = mixer_pair();

    let mut u = Unrolling::new(&netlist, UnrollOptions::symbolic_initial_state());
    u.set_learnt_budget(16);
    u.assume_signals_equal(0, r1, r2).expect("equal widths");

    for k in 1..=4usize {
        u.extend_to(k);
        // Obligation: the registers differ at frame k. They start equal and
        // step through identical mixing functions, so this must be UNSAT —
        // and proving it forces real conflict work through the adder and
        // shifter cones, which (under the tiny learnt budget) keeps the
        // reducer and the collector busy.
        let act = u.fresh_lit();
        let differ_lit = u.bit_lit(k, differ).expect("differ is one bit");
        u.add_clause_activated(act, [differ_lit]);
        assert!(
            u.solve(&[act]).is_unsat(),
            "identical mixers must stay equal at k={k}"
        );
        u.retire_activation(act);

        assert!(
            u.arena_wasted_ratio() < 0.25,
            "k={k}: wasted-hole ratio {} exceeds the documented bound",
            u.arena_wasted_ratio()
        );
        u.debug_validate()
            .unwrap_or_else(|e| panic!("k={k}: solver invariant violated: {e}"));
    }

    let stats = u.solver_stats();
    assert!(
        stats.deleted_clauses > 0,
        "the walk must trigger database reductions (got {} conflicts)",
        stats.conflicts
    );
    assert!(
        stats.arena_collections > 0,
        "the walk must trigger arena collections ({} clauses deleted)",
        stats.deleted_clauses
    );
}
