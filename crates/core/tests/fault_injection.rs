#![cfg(feature = "faults")]
//! Differential fault-injection suite (compiled only with `--features
//! faults`; run by `scripts/verify.sh --full`).
//!
//! A deterministic fault — a forced budget exhaustion, a spurious
//! cancellation at a restart boundary, a mid-slice abort — is armed at a
//! SplitMix64-chosen point inside an engine query. The contract under test:
//! the faulted query either still reaches the fault-free verdict or answers
//! [`UpecOutcome::Unknown`] with an honest stop cause — never a wrong
//! verdict, never a panic — and the session *resumes*: re-checking the same
//! bound afterwards reaches exactly the fault-free verdict.

use sat::faults::FaultPlan;
use sat::StopCause;
use soc::{SocConfig, SocVariant};
use upec::{IncrementalSession, SecretScenario, UpecModel, UpecOptions, UpecOutcome};

fn tiny(variant: SocVariant) -> SocConfig {
    SocConfig::new(variant)
        .with_registers(4)
        .with_cache_lines(2)
        .with_miss_latency(1)
        .with_store_latency(1)
}

/// Runs the differential for one (model, bound) pair over `seeds` fault
/// plans; returns how many injected faults actually fired.
fn differential(model: &UpecModel, k: usize, seeds: std::ops::Range<u64>) -> u64 {
    let commitment = upec::full_commitment(model);
    let clean =
        IncrementalSession::with_options(model, UpecOptions::window(0)).check_bound(k, &commitment);
    let mut fired = 0u64;
    for seed in seeds {
        let plan = FaultPlan::from_seed(seed, 30);
        let mut session = IncrementalSession::with_options(model, UpecOptions::window(0));
        session.inject_fault(Some(plan));
        let faulted = session.check_bound(k, &commitment);
        match &faulted {
            UpecOutcome::Unknown(stats) => {
                fired += 1;
                assert!(
                    matches!(
                        stats.stop,
                        Some(StopCause::BudgetExhausted | StopCause::Cancelled)
                    ),
                    "seed {seed}: fault stop misattributed: {:?}",
                    stats.stop
                );
            }
            decided => assert_eq!(
                decided.verdict_name(),
                clean.verdict_name(),
                "seed {seed}: fault flipped the verdict"
            ),
        }
        // The plan is one-shot; the resumed query must reach the fault-free
        // verdict on the same (possibly interrupted) session.
        let resumed = session.check_bound(k, &commitment);
        assert_eq!(
            resumed.verdict_name(),
            clean.verdict_name(),
            "seed {seed}: session poisoned — resume diverged from the clean verdict"
        );
    }
    fired
}

#[test]
fn injected_faults_never_flip_engine_verdicts() {
    // One alerting and one proven miter cover both verdict paths.
    let orc = UpecModel::new(&tiny(SocVariant::Orc), SecretScenario::InCache);
    let secure = UpecModel::new(&tiny(SocVariant::Secure), SecretScenario::NotInCache);
    let fired = differential(&orc, 2, 0..6) + differential(&secure, 1, 6..12);
    assert!(
        fired > 0,
        "no injected fault ever fired; the differential is vacuous"
    );
}

/// Full sweep over many seeds and a P-alerting miter; multi-minute in debug
/// builds, so opt-in: `cargo test -p upec --release --features faults -- --ignored`.
#[test]
#[ignore = "wide fault-injection sweep; run via scripts/verify.sh --full"]
fn injected_fault_sweep_is_verdict_clean() {
    let models = [
        UpecModel::new(&tiny(SocVariant::Orc), SecretScenario::InCache),
        UpecModel::new(&tiny(SocVariant::Secure), SecretScenario::InCache),
        UpecModel::new(&tiny(SocVariant::Secure), SecretScenario::NotInCache),
    ];
    let mut fired = 0;
    for (i, model) in models.iter().enumerate() {
        fired += differential(model, 2, (i as u64) * 32..(i as u64 + 1) * 32);
    }
    assert!(fired >= 8, "only {fired} faults fired across the sweep");
}
