//! Property-based co-simulation: the RTL SoC and the ISA-level golden model
//! must agree on the architectural state reached by arbitrary fault-free
//! programs, for every design variant (the variants only differ in covert
//! timing/state side effects, never in architectural results).

use proptest::prelude::*;
use soc::{Instruction, Program, SocConfig, SocSim, SocVariant};

fn instruction_strategy() -> impl Strategy<Value = Instruction> {
    let reg = 0u32..8;
    prop_oneof![
        (reg.clone(), reg.clone(), -512i32..512).prop_map(|(rd, rs1, imm)| Instruction::Addi { rd, rs1, imm }),
        (reg.clone(), reg.clone(), reg.clone()).prop_map(|(rd, rs1, rs2)| Instruction::Add { rd, rs1, rs2 }),
        (reg.clone(), reg.clone(), reg.clone()).prop_map(|(rd, rs1, rs2)| Instruction::Sub { rd, rs1, rs2 }),
        (reg.clone(), reg.clone(), reg.clone()).prop_map(|(rd, rs1, rs2)| Instruction::Xor { rd, rs1, rs2 }),
        (reg.clone(), reg.clone(), reg.clone()).prop_map(|(rd, rs1, rs2)| Instruction::Or { rd, rs1, rs2 }),
        (reg.clone(), reg.clone(), reg.clone()).prop_map(|(rd, rs1, rs2)| Instruction::And { rd, rs1, rs2 }),
        (reg.clone(), reg.clone(), reg.clone()).prop_map(|(rd, rs1, rs2)| Instruction::Sltu { rd, rs1, rs2 }),
        (reg.clone(), reg.clone(), 0i32..256).prop_map(|(rd, rs1, imm)| Instruction::Andi { rd, rs1, imm }),
        // Loads/stores through x1, which every generated program points at a
        // small scratch array, with word-aligned offsets.
        (reg.clone(), 0i32..4).prop_map(|(rd, o)| Instruction::Lw { rd, rs1: 1, offset: o * 4 }),
        (reg, 0i32..4).prop_map(|(rs2, o)| Instruction::Sw { rs1: 1, rs2, offset: o * 4 }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn rtl_matches_golden_model(
        body in prop::collection::vec(instruction_strategy(), 1..20),
        variant_index in 0usize..3,
    ) {
        let variant = [SocVariant::Secure, SocVariant::Orc, SocVariant::MeltdownStyle][variant_index];
        let config = SocConfig::new(variant);
        let mut program = Program::new(0);
        program.push(Instruction::Addi { rd: 1, rs1: 0, imm: 0x40 });
        for instruction in &body {
            program.push(*instruction);
        }
        program.push_nops(4);

        let mut sim = SocSim::new(config.clone(), program.clone());
        let mut golden = sim.golden();
        // Generous cycle budget: every instruction can miss in the cache.
        sim.run(60 + 20 * program.len() as u64);
        golden.run(&program, &config, 4 * program.len());

        for r in 1..config.num_registers {
            prop_assert_eq!(
                sim.reg(r),
                golden.regs[r as usize],
                "x{} mismatch on {:?}\n{}",
                r,
                variant,
                program.listing()
            );
        }
        // Memory written through the scratch array must agree too.
        for offset in 0..4u32 {
            let addr = 0x40 + 4 * offset;
            prop_assert_eq!(sim.load_word(addr), golden.load_word(addr), "mem[{:#x}]", addr);
        }
    }
}
