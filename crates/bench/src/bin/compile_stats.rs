//! Measures what the transition-relation compiler buys: encoded-CNF size
//! and solve time of UPEC queries with the compiler enabled (cone-of-
//! influence pruning + structural hashing + lazy per-frame encoding) versus
//! the eager pre-compiler baseline, asserting that verdicts are unchanged.
//!
//! Results are printed as a table and written to `BENCH_unroll.json` so the
//! repository's bench trajectory can track encoding size over time.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p bench --bin compile_stats              # orc at k=2
//! cargo run --release -p bench --bin compile_stats -- orc meltdown secure-cached
//! cargo run --release -p bench --bin compile_stats -- --k 3 orc
//! cargo run --release -p bench --bin compile_stats -- --out /tmp/unroll.json orc
//! ```

use bench::json::JsonObject;
use std::time::Instant;
use upec::engine::IncrementalSession;
use upec::scenarios::{self, ScenarioSpec};
use upec::UpecOptions;

/// One strategy's measurement.
struct Measurement {
    variables: usize,
    clauses: usize,
    solve_seconds: f64,
    verdict: &'static str,
    encoded_slots: usize,
    scheduled_slots: usize,
    /// Trail literals processed per second of *query wall time* (the whole
    /// `check_bound` call — encoding included, exactly like
    /// `solve_seconds`). Kept in the schema alongside `solver_stats` so
    /// encoding changes that shift propagation cost show up here too; the
    /// eager strategy's larger encoding share lowers its figure.
    propagations_per_second: f64,
}

fn measure(spec: &ScenarioSpec, k: usize, eager: bool) -> Measurement {
    let model = spec.build_model();
    let commitment = spec.commitment_set(&model);
    // Both sides run without CNF simplification so this bench keeps
    // isolating the *encoding* layer (and stays comparable with its PR 3
    // baseline); the solver layer has its own bench, `solver_stats`.
    let mut options = UpecOptions::window(k).no_simplify();
    if eager {
        options = options.eager();
    }
    let mut session = IncrementalSession::with_options(&model, options);
    let start = Instant::now();
    let outcome = session.check_bound(k, &commitment);
    let solve_seconds = start.elapsed().as_secs_f64();
    let encode = session.encode_stats();
    let solver = session.solver_stats();
    Measurement {
        variables: encode.variables,
        clauses: encode.clauses,
        solve_seconds,
        verdict: outcome.verdict_name(),
        encoded_slots: encode.encoded_slots,
        scheduled_slots: encode.scheduled_slots,
        propagations_per_second: solver.propagations as f64 / solve_seconds.max(1e-9),
    }
}

fn json_entry(
    spec: &ScenarioSpec,
    k: usize,
    eager: &Measurement,
    compiled: &Measurement,
) -> String {
    let reduction = reduction_percent(eager, compiled);
    let strategy = |m: &Measurement| {
        JsonObject::new()
            .field_usize("variables", m.variables)
            .field_usize("clauses", m.clauses)
            .field_f64("solve_seconds", m.solve_seconds, 3)
            .field_str("verdict", m.verdict)
            .field_usize("encoded_slots", m.encoded_slots)
            .field_usize("scheduled_slots", m.scheduled_slots)
            .field_f64("propagations_per_second", m.propagations_per_second, 0)
            .finish()
    };
    let entry = JsonObject::new()
        .field_str("id", spec.id)
        .field_usize("k", k)
        .field_raw("eager", &strategy(eager))
        .field_raw("compiled", &strategy(compiled))
        .field_f64("reduction_percent", reduction, 1)
        .finish();
    format!("    {entry}")
}

/// Reduction of CNF variables+clauses, in percent of the eager baseline.
fn reduction_percent(eager: &Measurement, compiled: &Measurement) -> f64 {
    let before = (eager.variables + eager.clauses) as f64;
    let after = (compiled.variables + compiled.clauses) as f64;
    if before == 0.0 {
        return 0.0;
    }
    100.0 * (before - after) / before
}

fn main() {
    let mut args = std::env::args().skip(1).peekable();
    let mut ids: Vec<String> = Vec::new();
    let mut k_override: Option<usize> = None;
    let mut out_path = "BENCH_unroll.json".to_string();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--k" => {
                let parsed = args.next().and_then(|v| v.parse().ok());
                let Some(k) = parsed else {
                    eprintln!("--k needs a numeric value");
                    std::process::exit(2);
                };
                k_override = Some(k);
            }
            "--out" => {
                let Some(path) = args.next() else {
                    eprintln!("--out needs a path");
                    std::process::exit(2);
                };
                out_path = path;
            }
            id => ids.push(id.to_string()),
        }
    }
    if ids.is_empty() {
        ids.push("orc".into());
    }

    println!(
        "{:<18} {:>2}  {:>10} {:>10} {:>9}   {:>10} {:>10} {:>9}  {:>7}  verdict",
        "scenario", "k", "vars", "clauses", "solve", "vars'", "clauses'", "solve'", "reduce"
    );
    let mut entries = Vec::new();
    let mut verdicts_match = true;
    for id in &ids {
        let spec = scenarios::by_id(id).unwrap_or_else(|| {
            eprintln!("unknown scenario `{id}`; known ids:");
            for s in scenarios::registry() {
                eprintln!("  {}", s.id);
            }
            std::process::exit(2);
        });
        // Default to the acceptance point k=2, clamped into the scenario's
        // registered scan range.
        let k = k_override
            .unwrap_or(2)
            .clamp(spec.start_window, spec.max_window);
        let eager = measure(&spec, k, true);
        let compiled = measure(&spec, k, false);
        if eager.verdict != compiled.verdict {
            verdicts_match = false;
            eprintln!(
                "VERDICT MISMATCH on {}: eager={} compiled={}",
                spec.id, eager.verdict, compiled.verdict
            );
        }
        println!(
            "{:<18} {:>2}  {:>10} {:>10} {:>8.2}s   {:>10} {:>10} {:>8.2}s  {:>6.1}%  {} / {}",
            spec.id,
            k,
            eager.variables,
            eager.clauses,
            eager.solve_seconds,
            compiled.variables,
            compiled.clauses,
            compiled.solve_seconds,
            reduction_percent(&eager, &compiled),
            eager.verdict,
            compiled.verdict,
        );
        entries.push(json_entry(&spec, k, &eager, &compiled));
    }

    let json = format!(
        "{{\n  \"bench\": \"compile_stats\",\n  \"unit\": \"CNF variables+clauses, seconds\",\n  \"scenarios\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    println!("\nwrote {out_path}");
    if !verdicts_match {
        std::process::exit(1);
    }
}
