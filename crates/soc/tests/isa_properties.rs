//! Randomized tests of the MiniRV instruction encoding and of the golden
//! model's architectural invariants, driven by [`rtl::SplitMix64`].

use rtl::SplitMix64;
use soc::isa::{csr, Instruction};
use soc::{GoldenModel, Program, SocConfig, SocVariant};

fn random_instruction(rng: &mut SplitMix64) -> Instruction {
    let rd = rng.gen_range(0..32) as u32;
    let rs1 = rng.gen_range(0..32) as u32;
    let rs2 = rng.gen_range(0..32) as u32;
    let aligned = (rng.gen_range(-512..512) as i32) & !3;
    match rng.gen_range(0..14) {
        0 => Instruction::Jal {
            rd,
            offset: aligned & !1,
        },
        1 => Instruction::Beq {
            rs1,
            rs2,
            offset: aligned & !1,
        },
        2 => Instruction::Bne {
            rs1,
            rs2,
            offset: aligned & !1,
        },
        3 => Instruction::Addi {
            rd,
            rs1,
            imm: rng.gen_range(-2048..2048) as i32,
        },
        4 => Instruction::Xori {
            rd,
            rs1,
            imm: rng.gen_range(-2048..2048) as i32,
        },
        5 => Instruction::Lw {
            rd,
            rs1,
            offset: rng.gen_range(-2048..2048) as i32,
        },
        6 => Instruction::Sw {
            rs1,
            rs2,
            offset: rng.gen_range(-2048..2048) as i32,
        },
        7 => Instruction::Add { rd, rs1, rs2 },
        8 => Instruction::Sub { rd, rs1, rs2 },
        9 => Instruction::Sltu { rd, rs1, rs2 },
        10 => Instruction::Lui {
            rd,
            imm: (rng.next_u64() as u32) & 0xffff_f000,
        },
        11 => Instruction::Csrrw {
            rd,
            csr: csr::PMPADDR0,
            rs1,
        },
        12 => Instruction::Csrrs {
            rd,
            csr: csr::CYCLE,
            rs1,
        },
        _ => Instruction::Mret,
    }
}

/// Every instruction survives an encode/decode round trip.
#[test]
fn encode_decode_roundtrip() {
    let mut rng = SplitMix64::new(0x15a);
    for _ in 0..512 {
        let ins = random_instruction(&mut rng);
        let encoded = ins.encode();
        assert_eq!(Instruction::decode(encoded), ins, "{ins:?}");
    }
}

/// Decoding never panics, whatever the word.
#[test]
fn decode_is_total() {
    let mut rng = SplitMix64::new(0xdec0de);
    for _ in 0..4096 {
        let _ = Instruction::decode(rng.next_u64() as u32);
    }
    // Also sweep some structured corner words.
    for word in [0, u32::MAX, 0x7f, 0xffff_ff7f, 0x0000_0073] {
        let _ = Instruction::decode(word);
    }
}

/// Architectural invariants of the golden model: x0 stays zero, the PC stays
/// word aligned, and a locked PMP region keeps protecting the secret no
/// matter what user-mode code runs.
#[test]
fn golden_model_invariants() {
    let mut rng = SplitMix64::new(0x601d);
    for case in 0..64 {
        let len = rng.gen_range(1..30) as usize;
        let config = SocConfig::new(SocVariant::Secure);
        let mut program = Program::new(0);
        for _ in 0..len {
            program.push(random_instruction(&mut rng));
        }
        let mut model = GoldenModel::new(&config);
        model.protect_region(config.protected_base, config.protected_top);
        model.store_word(config.secret_addr, 0x5ec2e7);
        for _ in 0..len * 2 {
            model.step(&program, &config);
            assert_eq!(model.regs[0], 0, "case {case}: x0 must stay zero");
            assert_eq!(model.pc % 4, 0, "case {case}: pc must stay word aligned");
            if model.mode == soc::Mode::Machine {
                // A trap was taken; from here on the random words execute as
                // "kernel" code, which is architecturally allowed to read the
                // secret, so the user-mode confidentiality check stops.
                break;
            }
            // While execution stays in user mode, no architectural register
            // may ever hold the protected secret.
            for (i, &r) in model.regs.iter().enumerate() {
                assert_ne!(r, 0x5ec2e7, "case {case}: x{i} received the secret");
            }
        }
    }
}
