//! Runs the parallel incremental UPEC engine over the scenario registry and
//! prints the aggregated report — the "sweep everything" entry point.
//!
//! ```text
//! cargo run --release -p bench --bin engine [-- --threads N] [--stripes N] [id ...]
//! ```
//!
//! Without arguments every registered scenario is scanned. Scenario ids
//! (e.g. `orc pmp-lock`) restrict the sweep.

use upec::scenarios::{self, ScenarioSpec};
use upec::{EngineOptions, UpecEngine};

fn main() {
    let mut threads: Option<usize> = None;
    let mut stripes: Option<usize> = None;
    let mut ids: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--threads" => threads = args.next().and_then(|v| v.parse().ok()),
            "--stripes" => stripes = args.next().and_then(|v| v.parse().ok()),
            other => ids.push(other.to_string()),
        }
    }

    let specs: Vec<ScenarioSpec> = if ids.is_empty() {
        scenarios::registry()
    } else {
        ids.iter()
            .map(|id| {
                scenarios::by_id(id).unwrap_or_else(|| {
                    eprintln!("unknown scenario `{id}`; registered ids:");
                    for s in scenarios::registry() {
                        eprintln!("  {:<18} {}", s.id, s.title);
                    }
                    std::process::exit(1);
                })
            })
            .collect()
    };

    let mut options = EngineOptions::new();
    if let Some(t) = threads {
        options = options.with_threads(t);
    }
    if let Some(s) = stripes {
        options = options.with_stripes(s);
    }
    println!(
        "UPEC engine: {} scenarios, {} threads, {} stripe(s) per scenario\n",
        specs.len(),
        options.threads,
        options.stripes
    );
    println!(
        "{:<18} {:<34} {:<30} {:>9}",
        "id", "title", "paper ref", "windows"
    );
    for spec in &specs {
        println!(
            "{:<18} {:<34} {:<30} {:>4}..={}",
            spec.id, spec.title, spec.paper_ref, spec.start_window, spec.max_window
        );
    }
    println!();

    let report = UpecEngine::new(options).run(specs);
    println!("{}", report.summary());
    if report.all_match_expectations() {
        println!("\nAll scenarios match their registered expectations.");
    } else {
        println!("\nWARNING: some scenarios deviate from their registered expectations:");
        for r in report.results.iter().filter(|r| !r.matches_expectation()) {
            println!(
                "  {:<18} expected {:?}, got {:?}",
                r.spec.id, r.spec.expected, r.verdict
            );
        }
        std::process::exit(1);
    }
}
