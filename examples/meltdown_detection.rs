//! Fig. 1 of the paper, end to end: a Meltdown-style cache footprint in an
//! in-order pipeline, demonstrated by simulation and detected formally by
//! UPEC.
//!
//! The Meltdown-style design variant does not cancel a cache-line refill that
//! was initiated by a transient (killed) load. After the trap, the cache's
//! tag/valid state depends on the secret — a covert channel an attacker can
//! read out with a timed probe, even though no architectural register ever
//! holds the secret.
//!
//! ```text
//! cargo run --release --example meltdown_detection
//! ```

use soc::{Instruction, Program, SocConfig, SocSim, SocVariant};
use upec::{run_methodology, SecretScenario, UpecChecker, UpecModel, UpecOptions, Verdict};

/// The transient-access sequence: an illegal load of the secret followed by a
/// dependent load whose address is the secret itself.
fn transient_program(config: &SocConfig) -> Program {
    let mut p = Program::new(0);
    p.push(Instruction::Addi {
        rd: 1,
        rs1: 0,
        imm: config.secret_addr as i32,
    });
    p.push(Instruction::Lw {
        rd: 4,
        rs1: 1,
        offset: 0,
    }); // traps
    p.push(Instruction::Lw {
        rd: 5,
        rs1: 4,
        offset: 0,
    }); // transient, address = secret
    p.push_nops(2);
    p
}

/// Runs the sequence and reports which cache line indices are valid
/// afterwards (the attacker's "probe" view).
fn cache_footprint(variant: SocVariant, secret: u32) -> Vec<u64> {
    let config = SocConfig::new(variant);
    let mut sim = SocSim::new(config.clone(), transient_program(&config));
    sim.protect_secret_region();
    sim.preload_secret_in_cache(secret);
    // Make the secret-derived address a miss so a refill is required.
    sim.store_word(secret, 0x1111_2222);
    sim.run(60);
    assert_eq!(sim.reg(4), 0, "the secret never reaches x4");
    assert_eq!(sim.reg(5), 0, "the transient load result is squashed");
    (0..config.cache_lines)
        .map(|i| sim.register(&format!("dcache.valid{i}")))
        .collect()
}

fn main() {
    // Two different secrets map to different cache indices.
    let secret_a = 0x184; // index 1
    let secret_b = 0x188; // index 2

    println!("=== Simulation: cache footprint after the transient sequence ===");
    for variant in [SocVariant::MeltdownStyle, SocVariant::Secure] {
        let fp_a = cache_footprint(variant, secret_a);
        let fp_b = cache_footprint(variant, secret_b);
        println!(
            "{:>15}: secret {secret_a:#x} -> valid bits {fp_a:?}",
            variant.name()
        );
        println!(
            "{:>15}: secret {secret_b:#x} -> valid bits {fp_b:?}",
            variant.name()
        );
        if fp_a != fp_b {
            println!("                -> footprint depends on the secret: covert channel!");
            assert_eq!(variant, SocVariant::MeltdownStyle);
        } else {
            println!("                -> footprint independent of the secret.");
            assert_eq!(variant, SocVariant::Secure);
        }
    }

    println!("\n=== UPEC: formal detection without knowing the attack ===");
    let small = |v: SocVariant| {
        SocConfig::new(v)
            .with_registers(4)
            .with_cache_lines(2)
            .with_miss_latency(1)
            .with_store_latency(1)
    };
    // The paper reports that for the Meltdown-style design the first P-alert
    // already shows the secret reaching the cache's valid bits and tags — "a
    // well-known starting point for side channel attacks" — so the check
    // below asks exactly that question: can the cache's tag/valid state
    // depend on the secret?
    let checker = UpecChecker::new();
    for variant in [SocVariant::MeltdownStyle, SocVariant::Secure] {
        let config = small(variant);
        let model = UpecModel::new(&config, SecretScenario::InCache);
        let cache_state: std::collections::BTreeSet<String> = model
            .pairs()
            .iter()
            .map(|p| p.name.clone())
            .filter(|n| n.starts_with("dcache.tag") || n.starts_with("dcache.valid"))
            .collect();
        let outcome = checker.check(&model, UpecOptions::window(4), &cache_state);
        match variant {
            SocVariant::MeltdownStyle => {
                let alert = outcome.alert().expect("the transient refill must show up");
                println!(
                    "{:>15}: cache footprint P-alert at window 4 — differing registers {:?}",
                    variant.name(),
                    alert.differing_registers()
                );
            }
            _ => {
                assert!(
                    outcome.is_proven(),
                    "secure design must keep the cache state unique"
                );
                println!(
                    "{:>15}: cache tag/valid state proven independent of the secret ({:?})",
                    variant.name(),
                    outcome.stats().runtime
                );
            }
        }
    }
    // The full methodology additionally proves the secure design free of any
    // covert channel at this window.
    let model = UpecModel::new(&small(SocVariant::Secure), SecretScenario::InCache);
    let report = run_methodology(&model, UpecOptions::window(3));
    println!("{:>15}: {}", "secure", report.summary());
    assert_eq!(report.verdict, Verdict::Secure);
    println!("\nUPEC flags the Meltdown-style variant from the RTL alone, while the");
    println!("original design is proven free of covert channels at this window.");
}
