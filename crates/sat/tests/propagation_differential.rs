//! Differential fuzzing of the overhauled propagation core.
//!
//! The PR that introduced the binary implication graph, the indexed VSIDS
//! heap and the clause-arena garbage collection replaced the solve path
//! wholesale, so these tests pin the new core against an independent
//! reference: brute-force enumeration on binary-heavy, Tseitin-style random
//! CNFs (the clause-length profile the UPEC miters produce — AND/OR gates
//! contribute two binary clauses each, XOR gates ternary ones). Every
//! configuration axis that changes the propagation path is crossed:
//! default solving, tiny learnt budgets that force database reduction and
//! arena collections mid-search, incremental clause additions, assumptions,
//! and the CNF simplification pipeline.

use rtl::SplitMix64;
use sat::{Lit, SatResult, Solver, Var};

/// Brute-force satisfiability check for formulas with at most 16 variables.
fn brute_force_sat(num_vars: usize, clauses: &[Vec<Lit>]) -> bool {
    assert!(num_vars <= 16);
    'outer: for assignment in 0u32..(1 << num_vars) {
        for clause in clauses {
            let satisfied = clause.iter().any(|l| {
                let value = (assignment >> l.var().index()) & 1 == 1;
                value == l.is_positive()
            });
            if !satisfied {
                if clause.is_empty() {
                    return false;
                }
                continue 'outer;
            }
        }
        return true;
    }
    false
}

fn random_lit(rng: &mut SplitMix64, num_vars: usize) -> Lit {
    let v = rng.gen_u64_below(num_vars as u64) as usize;
    Lit::new(Var::from_index(v), rng.gen_bool())
}

/// A random Tseitin-style circuit: `inputs` free variables, then a layer of
/// gate variables each defined as AND/OR/XOR of two earlier literals, plus a
/// few random constraint clauses. Clause lengths are dominated by binaries,
/// exactly like the bit-blasted UPEC miters.
fn random_tseitin_cnf(rng: &mut SplitMix64) -> (usize, Vec<Vec<Lit>>) {
    let inputs = rng.gen_range(3..6) as usize;
    let gates = rng.gen_range(3..11) as usize;
    let num_vars = inputs + gates;
    let mut clauses: Vec<Vec<Lit>> = Vec::new();
    for gi in 0..gates {
        let defined = inputs + gi;
        let g = Var::from_index(defined).positive();
        let a = random_lit(rng, defined);
        let b = random_lit(rng, defined);
        match rng.gen_u64_below(3) {
            0 => {
                // g <-> a AND b
                clauses.push(vec![!g, a]);
                clauses.push(vec![!g, b]);
                clauses.push(vec![g, !a, !b]);
            }
            1 => {
                // g <-> a OR b
                clauses.push(vec![g, !a]);
                clauses.push(vec![g, !b]);
                clauses.push(vec![!g, a, b]);
            }
            _ => {
                // g <-> a XOR b
                clauses.push(vec![!g, a, b]);
                clauses.push(vec![!g, !a, !b]);
                clauses.push(vec![g, !a, b]);
                clauses.push(vec![g, a, !b]);
            }
        }
    }
    // Random constraints push a fraction of the instances into UNSAT
    // territory so both verdicts are exercised.
    let constraints = rng.gen_range(1..5) as usize;
    for _ in 0..constraints {
        let len = rng.gen_range(1..3) as usize;
        let clause: Vec<Lit> = (0..len).map(|_| random_lit(rng, num_vars)).collect();
        clauses.push(clause);
    }
    (num_vars, clauses)
}

fn check_model(model: &sat::Model, clauses: &[Vec<Lit>], context: &str) {
    for clause in clauses {
        assert!(
            clause.iter().any(|&l| model.lit_is_true(l)),
            "{context}: model does not satisfy {clause:?}"
        );
    }
}

/// The new propagation core agrees with brute force on binary-heavy
/// Tseitin-style formulas, and its models satisfy every clause.
#[test]
fn tseitin_formulas_agree_with_brute_force() {
    let mut rng = SplitMix64::new(0xb1_4a17);
    let mut sat_cases = 0usize;
    let mut unsat_cases = 0usize;
    for case in 0..96 {
        let (num_vars, clauses) = random_tseitin_cnf(&mut rng);
        let mut solver = Solver::new();
        solver.reserve_vars(num_vars);
        for clause in &clauses {
            solver.add_clause(clause.iter().copied());
        }
        let expected = brute_force_sat(num_vars, &clauses);
        match solver.solve() {
            SatResult::Sat(model) => {
                assert!(expected, "case {case}: solver sat, brute force unsat");
                check_model(&model, &clauses, &format!("case {case}"));
                sat_cases += 1;
            }
            SatResult::Unsat => {
                assert!(!expected, "case {case}: solver unsat, brute force sat");
                unsat_cases += 1;
            }
            SatResult::Unknown => panic!("no limit was set, Unknown is impossible"),
        }
        solver.debug_validate().unwrap_or_else(|e| {
            panic!("case {case}: invariant violated after solving: {e}");
        });
    }
    assert!(
        sat_cases > 0 && unsat_cases > 0,
        "generator must cover both verdicts (sat {sat_cases}, unsat {unsat_cases})"
    );
}

/// A tiny learnt budget forces frequent database reductions (and arena
/// collections) mid-search; verdicts and models must be unaffected.
#[test]
fn forced_reductions_do_not_change_verdicts() {
    let mut rng = SplitMix64::new(0x6c_0ffe);
    for case in 0..64 {
        let (num_vars, clauses) = random_tseitin_cnf(&mut rng);
        let expected = brute_force_sat(num_vars, &clauses);
        let mut solver = Solver::new();
        solver.set_learnt_budget(8);
        solver.reserve_vars(num_vars);
        for clause in &clauses {
            solver.add_clause(clause.iter().copied());
        }
        match solver.solve() {
            SatResult::Sat(model) => {
                assert!(
                    expected,
                    "case {case}: reduced-db solver sat, reference unsat"
                );
                check_model(&model, &clauses, &format!("case {case}"));
            }
            SatResult::Unsat => {
                assert!(
                    !expected,
                    "case {case}: reduced-db solver unsat, reference sat"
                )
            }
            SatResult::Unknown => panic!("no limit was set"),
        }
        assert!(
            solver.arena_wasted_ratio() < 0.25,
            "case {case}: wasted ratio {} exceeds the GC bound",
            solver.arena_wasted_ratio()
        );
        solver
            .debug_validate()
            .unwrap_or_else(|e| panic!("case {case}: {e}"));
    }
}

/// Growing a formula incrementally (solve, add clauses, solve again, with
/// and without assumptions) answers exactly like a fresh solver given the
/// full clause set — the contract the `bmc` unroller builds on.
#[test]
fn incremental_sessions_match_fresh_solvers() {
    let mut rng = SplitMix64::new(0x11_c4e5);
    for case in 0..48 {
        let (num_vars, clauses) = random_tseitin_cnf(&mut rng);
        let split = clauses.len() / 2;

        let mut incremental = Solver::new();
        incremental.set_learnt_budget(8); // keep reductions + GC in the loop
        incremental.reserve_vars(num_vars);
        for clause in &clauses[..split] {
            incremental.add_clause(clause.iter().copied());
        }
        let first = incremental.solve();
        assert_eq!(
            first.is_sat(),
            brute_force_sat(num_vars, &clauses[..split]),
            "case {case}: prefix verdict"
        );

        for clause in &clauses[split..] {
            incremental.add_clause(clause.iter().copied());
        }
        let expected = brute_force_sat(num_vars, &clauses);
        assert_eq!(
            incremental.solve().is_sat(),
            expected,
            "case {case}: full verdict after incremental additions"
        );

        // Assumption-driven queries on the grown solver agree with a fresh
        // solver fed the assumption as a unit clause.
        let assumption = random_lit(&mut rng, num_vars);
        let mut with_unit = clauses.clone();
        with_unit.push(vec![assumption]);
        let expected_assumed = brute_force_sat(num_vars, &with_unit);
        assert_eq!(
            incremental.solve_with_assumptions(&[assumption]).is_sat(),
            expected_assumed,
            "case {case}: assumption query"
        );
        // The assumption must not have leaked into the formula.
        assert_eq!(
            incremental.solve().is_sat(),
            expected,
            "case {case}: verdict after retracting the assumption"
        );
    }
}

/// The CNF simplification pipeline composed with the new propagation core:
/// verdicts match brute force and models stay correct for every variable —
/// including the eliminated ones reconstructed by model extension.
#[test]
fn simplified_solving_matches_brute_force() {
    let mut rng = SplitMix64::new(0x5e_ed5);
    for case in 0..48 {
        let (num_vars, clauses) = random_tseitin_cnf(&mut rng);
        let mut solver = Solver::new();
        solver.reserve_vars(num_vars);
        for clause in &clauses {
            solver.add_clause(clause.iter().copied());
        }
        // Freeze a random subset (inputs of later constraint batches); the
        // rest is fair game for bounded variable elimination.
        for vi in 0..num_vars {
            if rng.gen_bool() {
                solver.freeze_var(Var::from_index(vi));
            }
        }
        let expected = brute_force_sat(num_vars, &clauses);
        let still_consistent = solver.simplify();
        if !still_consistent {
            assert!(
                !expected,
                "case {case}: simplify proved a sat formula unsat"
            );
            continue;
        }
        match solver.solve() {
            SatResult::Sat(model) => {
                assert!(expected, "case {case}: sat after simplify, reference unsat");
                check_model(&model, &clauses, &format!("case {case} (simplified)"));
            }
            SatResult::Unsat => assert!(!expected, "case {case}: unsat after simplify"),
            SatResult::Unknown => panic!("no limit was set"),
        }
    }
}
