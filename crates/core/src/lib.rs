//! # `upec` — Unique Program Execution Checking
//!
//! This crate implements the contribution of the DATE 2019 paper *"Processor
//! Hardware Security Vulnerabilities and their Detection by Unique Program
//! Execution Checking"*: an exhaustive, formal method that detects **covert
//! channels** in a processor's RTL without needing to anticipate any specific
//! attack.
//!
//! The flow mirrors the paper:
//!
//! 1. [`UpecModel`] builds the two-instance *miter* of Fig. 3 — two identical
//!    SoC instances whose memories agree everywhere except at one protected
//!    (secret) location — together with the side constraints of Sec. V
//!    (no ongoing protected access, cache-protocol monitor, secure system
//!    software, equality of non-protected memory).
//! 2. [`UpecChecker`] checks the UPEC interval property of Fig. 4 on a
//!    bounded model with a *symbolic initial state* (interval property
//!    checking), classifying counterexamples into [`AlertKind::PAlert`] and
//!    [`AlertKind::LAlert`] (Defs. 6/7).
//! 3. [`run_methodology`] drives the iterative analysis of Fig. 5: P-alerting
//!    registers are removed from the proof obligation until the design is
//!    proven or an L-alert demonstrates a covert channel.
//! 4. [`prove_alert_closure`] completes the argument for secure designs with
//!    the inductive proof of Sec. VI: differences confined to the P-alerting
//!    registers can never reach architectural state.
//!
//! Beyond the paper, two subsystems make the flow scale:
//!
//! * the [`engine`] module — [`IncrementalSession`] (one persistent SAT
//!   solver per miter, reused across bound deepening and commitment
//!   shrinking) and [`UpecEngine`] (a scenario- and bound-parallel worker
//!   pool with solver-level cancellation);
//! * the [`scenarios`] module — the named registry of every attack scenario
//!   the reproduction checks, with paper references and expected verdicts,
//!   shared by the engine, the bench binaries and the examples;
//! * the [`portfolio`] module — a deterministic single-core portfolio
//!   scheduler that time-slices several solver configurations on one query
//!   under resumable [`sat::Budget`]s, first finisher wins (see
//!   `docs/robustness.md`);
//! * **checkable verdicts** — every query can be packaged as a
//!   [`VerdictCertificate`]: proven bounds carry a trimmed DRAT refutation
//!   replayed by the independent checker in [`sat::drat`], violated bounds
//!   carry a concrete witness trace replayed on the [`sim`] golden model
//!   (see `docs/certificates.md`).
//!
//! # Example
//!
//! ```
//! use soc::{SocConfig, SocVariant};
//! use upec::{SecretScenario, UpecChecker, UpecModel, UpecOptions};
//!
//! // A small configuration keeps the proof fast for the doc test.
//! let config = SocConfig::new(SocVariant::Secure)
//!     .with_registers(4)
//!     .with_cache_lines(2)
//!     .with_miss_latency(1)
//!     .with_store_latency(1);
//! let model = UpecModel::new(&config, SecretScenario::NotInCache);
//! let outcome = UpecChecker::new().check_full(&model, UpecOptions::window(1));
//! assert!(outcome.is_proven());
//! ```

#![warn(missing_docs)]

mod certify;
mod check;
mod methodology;
mod model;

pub mod engine;
pub mod portfolio;
pub mod scenarios;

pub use certify::{
    CertificateCheck, CertificateError, UnsatCertificate, VerdictCertificate, WitnessCertificate,
};
pub use check::{
    full_commitment, Alert, AlertKind, UpecChecker, UpecOptions, UpecOutcome, UpecStats,
};
pub use engine::{
    BoundStatus, BoundSummary, CertifiedBound, CertifiedResult, EngineError, EngineOptions,
    EngineReport, IncrementalSession, InstanceResult, ScanVerdict, ScenarioResult,
    SharedClausePool, UpecEngine,
};
pub use methodology::{
    close_alert_set, prove_alert_closure, run_methodology, ClosureOutcome, MethodologyReport,
    Verdict,
};
pub use model::{NamedConstraint, RegisterPair, SecretScenario, StateClass, UpecModel};
pub use portfolio::{solve_portfolio, PortfolioOptions, PortfolioReport, SliceRecord};
