//! Randomized co-simulation: the RTL SoC and the ISA-level golden model must
//! agree on the architectural state reached by arbitrary fault-free programs,
//! for every design variant (the variants only differ in covert timing/state
//! side effects, never in architectural results).
//!
//! The programs come from the same `soc::fuzz::ProgramGen` that drives the
//! divergence miner, so the co-simulation check and the miner exercise one
//! shared, ISA-complete instruction source.

use soc::fuzz::{cosim_check, ProgramGen};
use soc::{SocConfig, SocVariant};

#[test]
fn rtl_matches_golden_model() {
    for (case, variant) in [
        SocVariant::Secure,
        SocVariant::Orc,
        SocVariant::MeltdownStyle,
    ]
    .into_iter()
    .cycle()
    .take(24)
    .enumerate()
    {
        let config = SocConfig::new(variant);
        // One generator per case keeps each program reproducible from the
        // case index alone, independent of the variant interleaving.
        let mut gen = ProgramGen::new(0xc051 + case as u64, &config);
        let program = gen.next_program_in(1, 20);
        if let Err(mismatch) = cosim_check(&config, &program) {
            panic!(
                "case {case}: RTL/golden divergence on {variant:?}: {mismatch}\n{}",
                program.listing()
            );
        }
    }
}

#[test]
fn rtl_matches_golden_model_on_attack_shaped_programs() {
    // Longer programs raise the odds of the generator's transient-access
    // gadget (pointer load + dependent load); the architectural contract
    // must hold through cache misses, stalls and replayed loads as well.
    let config = SocConfig::new(SocVariant::MeltdownStyle);
    let mut gen = ProgramGen::new(0xdabd_4c19, &config);
    for case in 0..8 {
        let program = gen.next_program_in(12, 20);
        if let Err(mismatch) = cosim_check(&config, &program) {
            panic!(
                "case {case}: RTL/golden divergence: {mismatch}\n{}",
                program.listing()
            );
        }
    }
}
