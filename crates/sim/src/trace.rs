//! Waveform capture: record selected signals over time.

use crate::Simulator;
use rtl::{BitVec, SignalId};

/// Records the values of a chosen set of signals every cycle.
///
/// A trace is the simulator-side analogue of the counterexample traces
/// produced by the formal engine: both are sequences of per-cycle valuations
/// that can be compared or printed.
///
/// # Examples
///
/// ```
/// use rtl::{Netlist, BitVec};
/// use sim::{Simulator, Trace};
///
/// let mut n = Netlist::new("c");
/// let r = n.register_init("r", 4, BitVec::zero(4));
/// let one = n.lit(1, 4);
/// let next = n.add(r.value(), one);
/// n.set_next(r, next);
/// let watch = r.value();
///
/// let mut sim = Simulator::new(n);
/// let mut trace = Trace::new(vec![("r".to_string(), watch)]);
/// for _ in 0..4 {
///     trace.sample(&mut sim);
///     sim.step();
/// }
/// assert_eq!(trace.values_of("r").unwrap().iter().map(|v| v.as_u64()).collect::<Vec<_>>(), vec![0, 1, 2, 3]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Trace {
    signals: Vec<(String, SignalId)>,
    samples: Vec<Vec<BitVec>>,
    cycles: Vec<u64>,
}

impl Trace {
    /// Creates a trace that will record the given `(name, signal)` pairs.
    pub fn new(signals: Vec<(String, SignalId)>) -> Self {
        Self {
            signals,
            samples: Vec::new(),
            cycles: Vec::new(),
        }
    }

    /// Records the current value of every watched signal.
    pub fn sample(&mut self, sim: &mut Simulator) {
        let row = self.signals.iter().map(|&(_, s)| sim.peek(s)).collect();
        self.samples.push(row);
        self.cycles.push(sim.cycle());
    }

    /// Number of recorded samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The recorded values of a signal by its trace name.
    pub fn values_of(&self, name: &str) -> Option<Vec<BitVec>> {
        let col = self.signals.iter().position(|(n, _)| n == name)?;
        Some(self.samples.iter().map(|row| row[col]).collect())
    }

    /// Names of all traced signals, in column order.
    pub fn signal_names(&self) -> Vec<&str> {
        self.signals.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// Renders the trace as a compact ASCII table (one row per cycle).
    pub fn to_table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(out, "{:>6}", "cycle");
        for (name, _) in &self.signals {
            let _ = write!(out, " {name:>12}");
        }
        let _ = writeln!(out);
        for (row, cycle) in self.samples.iter().zip(&self.cycles) {
            let _ = write!(out, "{cycle:>6}");
            for v in row {
                let _ = write!(out, " {:>12}", format!("{v:x}"));
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Emits the trace in Value Change Dump (VCD) format.
    ///
    /// The output can be loaded into standard waveform viewers (GTKWave,
    /// Surfer) for debugging the SoC designs.
    pub fn to_vcd(&self, design_name: &str) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "$date reproduction run $end");
        let _ = writeln!(out, "$version upec-repro sim $end");
        let _ = writeln!(out, "$timescale 1ns $end");
        let _ = writeln!(out, "$scope module {design_name} $end");
        let idents: Vec<String> = (0..self.signals.len()).map(vcd_ident).collect();
        for ((name, _), ident) in self.signals.iter().zip(&idents) {
            // VCD has no width lookup here; derive it from the first sample
            // if there is one, else assume 1.
            let width = self
                .samples
                .first()
                .map(|row| row[self.signals.iter().position(|(n, _)| n == name).unwrap()].width())
                .unwrap_or(1);
            let _ = writeln!(
                out,
                "$var wire {width} {ident} {} $end",
                name.replace(' ', "_")
            );
        }
        let _ = writeln!(out, "$upscope $end");
        let _ = writeln!(out, "$enddefinitions $end");
        for (row, cycle) in self.samples.iter().zip(&self.cycles) {
            let _ = writeln!(out, "#{cycle}");
            for (v, ident) in row.iter().zip(&idents) {
                if v.width() == 1 {
                    let _ = writeln!(out, "{}{}", v.as_u64(), ident);
                } else {
                    let _ = writeln!(out, "b{:b} {}", v.as_u64(), ident);
                }
            }
        }
        out
    }
}

fn vcd_ident(index: usize) -> String {
    // Printable identifier characters per the VCD spec: '!' (33) to '~' (126).
    let mut n = index;
    let mut s = String::new();
    loop {
        s.push(char::from(33 + (n % 94) as u8));
        n /= 94;
        if n == 0 {
            break;
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtl::Netlist;

    fn traced_counter() -> (Simulator, Trace) {
        let mut n = Netlist::new("c");
        let r = n.register_init("r", 4, BitVec::zero(4));
        let one = n.lit(1, 4);
        let next = n.add(r.value(), one);
        n.set_next(r, next);
        let flag = n.eq_lit(r.value(), 2);
        n.output("flag", flag);
        let watch_r = r.value();
        let sim = Simulator::new(n);
        let trace = Trace::new(vec![("r".to_string(), watch_r), ("flag".to_string(), flag)]);
        (sim, trace)
    }

    #[test]
    fn trace_records_values_per_cycle() {
        let (mut sim, mut trace) = traced_counter();
        for _ in 0..5 {
            trace.sample(&mut sim);
            sim.step();
        }
        assert_eq!(trace.len(), 5);
        assert!(!trace.is_empty());
        let r = trace.values_of("r").unwrap();
        assert_eq!(
            r.iter().map(BitVec::as_u64).collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 4]
        );
        let flag = trace.values_of("flag").unwrap();
        assert_eq!(
            flag.iter().map(BitVec::as_u64).collect::<Vec<_>>(),
            vec![0, 0, 1, 0, 0]
        );
        assert!(trace.values_of("missing").is_none());
        assert_eq!(trace.signal_names(), vec!["r", "flag"]);
    }

    #[test]
    fn table_and_vcd_render() {
        let (mut sim, mut trace) = traced_counter();
        for _ in 0..3 {
            trace.sample(&mut sim);
            sim.step();
        }
        let table = trace.to_table();
        assert!(table.contains("cycle"));
        assert!(table.lines().count() >= 4);
        let vcd = trace.to_vcd("counter");
        assert!(vcd.contains("$var wire 4"));
        assert!(vcd.contains("$enddefinitions"));
        assert!(vcd.contains("#2"));
    }

    #[test]
    fn vcd_identifiers_are_unique_and_printable() {
        let ids: Vec<String> = (0..200).map(vcd_ident).collect();
        let unique: std::collections::HashSet<_> = ids.iter().collect();
        assert_eq!(unique.len(), ids.len());
        assert!(ids
            .iter()
            .all(|s| s.chars().all(|c| ('!'..='~').contains(&c))));
    }
}
