//! Regression tests for the transition-relation compiler on the real UPEC
//! miter: fast schedule-shape snapshots by default, and `#[ignore]`d
//! multi-minute SAT regressions pinning the paper-level findings.

use upec::engine::IncrementalSession;
use upec::scenarios;
use upec::{AlertKind, UpecOptions, UpecOutcome};

/// The compiled miter schedule must be strictly smaller than the raw
/// netlist: the cone-of-influence pruning, the structural hashing and the
/// constant folding all fire on the two-instance miter.
#[test]
fn miter_schedule_is_smaller_than_the_netlist() {
    let spec = scenarios::by_id("secure-cached").expect("registered");
    let model = spec.build_model();
    let stats = model.compiled_transition().stats();
    assert!(
        stats.scheduled_slots < stats.netlist_signals,
        "schedule {} must be smaller than the netlist {}",
        stats.scheduled_slots,
        stats.netlist_signals
    );
    assert!(
        stats.hashed_signals > 0,
        "miters are full of shared subterms"
    );
    // Word-level constant folding rarely fires on the hand-built SoC (the
    // generator already folds by construction), so only sanity-check it.
    assert!(stats.folded_signals + stats.hashed_signals > 0);
    assert!(stats.coi.cone_signals <= stats.coi.total_signals);
    // The roots cover every queryable signal, so dropped registers must be
    // rare-to-none — but scheduled slots still shrink via hashing/folding.
    assert_eq!(stats.netlist_signals, stats.coi.total_signals);
}

/// Every registered scenario's miter compiles, and the schedule stays
/// consistent with the netlist (spot invariants, no SAT involved).
#[test]
fn every_scenario_miter_compiles() {
    for spec in scenarios::registry() {
        let model = spec.build_model();
        let ct = model.compiled_transition();
        assert!(!ct.is_empty(), "{}: empty schedule", spec.id);
        // All obligation signals must be in the schedule.
        for pair in model.pairs() {
            assert!(
                ct.slot_of(pair.equal).is_some(),
                "{}: equal signal of `{}` pruned",
                spec.id,
                pair.name
            );
            assert!(
                ct.slot_of(pair.equal_or_blocked).is_some(),
                "{}: equal_or_blocked signal of `{}` pruned",
                spec.id,
                pair.name
            );
        }
        for c in model
            .initial_constraints()
            .iter()
            .chain(model.window_constraints())
        {
            assert!(
                ct.slot_of(c.signal).is_some(),
                "{}: constraint `{}` pruned",
                spec.id,
                c.label
            );
        }
    }
}

/// The compiled and the eager encodings must agree on the Orc L-alert
/// verdict at the acceptance point k=2 while the compiled CNF is smaller.
/// Release-mode runtime: roughly a minute.
#[test]
#[ignore = "two cold Orc k=2 SAT queries (~1 min release, much longer debug); run with --ignored"]
fn orc_verdict_is_identical_under_both_encodings() {
    let spec = scenarios::by_id("orc").expect("registered");
    let model = spec.build_model();
    let commitment = spec.commitment_set(&model);
    let verdict = |options: UpecOptions| {
        let mut session = IncrementalSession::with_options(&model, options);
        let outcome = session.check_bound(2, &commitment);
        let stats = session.encode_stats();
        (outcome, stats.variables + stats.clauses)
    };
    let (eager, eager_size) = verdict(UpecOptions::window(2).eager());
    let (compiled, compiled_size) = verdict(UpecOptions::window(2));
    assert_eq!(
        eager.alert().map(|a| a.kind),
        compiled.alert().map(|a| a.kind),
        "eager {eager:?} vs compiled {compiled:?}"
    );
    assert!(
        compiled_size < eager_size,
        "compiled CNF ({compiled_size}) must be smaller than eager ({eager_size})"
    );
}

/// Pins the paper-level finding that the secret-dependent cache footprint
/// (Fig. 1 as a UPEC check) first becomes visible at window k=5 on this
/// geometry — no alert at k <= 4, a P-alert at k=5.
#[test]
#[ignore = "multi-minute SAT proof (cache-footprint P-alert at k=5); run with --ignored in release"]
fn cache_footprint_p_alert_first_appears_at_k5() {
    let spec = scenarios::by_id("cache-footprint").expect("registered");
    let model = spec.build_model();
    let commitment = spec.commitment_set(&model);
    let mut session = IncrementalSession::new(&model, None);
    for k in 1..=4 {
        let outcome = session.check_bound(k, &commitment);
        assert!(
            outcome.is_proven(),
            "no cache-state difference may be visible at k={k}: {outcome:?}"
        );
    }
    let outcome = session.check_bound(5, &commitment);
    match outcome {
        UpecOutcome::Violated(ref alert, _) => {
            assert_eq!(alert.kind, AlertKind::PAlert, "alert: {alert:?}")
        }
        other => panic!("expected the k=5 P-alert, got {other:?}"),
    }
}
