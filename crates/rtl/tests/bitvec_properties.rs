//! Property-based tests of the bit-vector value semantics that the whole
//! workspace (simulator and bit-blaster alike) relies on.

use proptest::prelude::*;
use rtl::BitVec;

fn width() -> impl Strategy<Value = u32> {
    1u32..=64
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Addition is commutative, associative with respect to wrapping, and
    /// subtraction is its inverse.
    #[test]
    fn add_sub_are_modular_inverses(w in width(), a: u64, b: u64) {
        let x = BitVec::new(a, w);
        let y = BitVec::new(b, w);
        prop_assert_eq!(x.add(&y), y.add(&x));
        prop_assert_eq!(x.add(&y).sub(&y), x);
        prop_assert_eq!(x.sub(&y).add(&y), x);
        prop_assert_eq!(x.add(&x.neg()), BitVec::zero(w));
    }

    /// Bitwise operators satisfy De Morgan's laws.
    #[test]
    fn de_morgan(w in width(), a: u64, b: u64) {
        let x = BitVec::new(a, w);
        let y = BitVec::new(b, w);
        prop_assert_eq!(x.and(&y).not(), x.not().or(&y.not()));
        prop_assert_eq!(x.or(&y).not(), x.not().and(&y.not()));
        prop_assert_eq!(x.xor(&y), x.and(&y.not()).or(&x.not().and(&y)));
    }

    /// Slicing and concatenation are inverses.
    #[test]
    fn slice_concat_roundtrip(w_hi in 1u32..=32, w_lo in 1u32..=32, a: u64, b: u64) {
        let hi = BitVec::new(a, w_hi);
        let lo = BitVec::new(b, w_lo);
        let cat = hi.concat(&lo);
        prop_assert_eq!(cat.width(), w_hi + w_lo);
        prop_assert_eq!(cat.slice(w_hi + w_lo - 1, w_lo), hi);
        prop_assert_eq!(cat.slice(w_lo - 1, 0), lo);
    }

    /// Comparisons agree with the integer interpretation.
    #[test]
    fn comparisons_match_integers(w in width(), a: u64, b: u64) {
        let x = BitVec::new(a, w);
        let y = BitVec::new(b, w);
        prop_assert_eq!(x.ult(&y).is_true(), x.as_u64() < y.as_u64());
        prop_assert_eq!(x.ule(&y).is_true(), x.as_u64() <= y.as_u64());
        prop_assert_eq!(x.eq_bit(&y).is_true(), x.as_u64() == y.as_u64());
        prop_assert_eq!(x.slt(&y).is_true(), x.as_i64() < y.as_i64());
    }

    /// Shifts match multiplication/division by powers of two.
    #[test]
    fn shifts_match_arithmetic(w in width(), a: u64, amount in 0u32..70) {
        let x = BitVec::new(a, w);
        let shifted = x.shl(amount);
        if amount >= w {
            prop_assert!(shifted.is_zero());
        } else {
            prop_assert_eq!(shifted.as_u64(), (x.as_u64() << amount) & BitVec::ones(w).as_u64());
        }
        let shifted = x.shr(amount);
        if amount >= w {
            prop_assert!(shifted.is_zero());
        } else {
            prop_assert_eq!(shifted.as_u64(), x.as_u64() >> amount);
        }
    }

    /// Sign/zero extension preserve the numeric interpretation.
    #[test]
    fn extensions_preserve_value(w in 1u32..=32, extra in 0u32..=32, a: u64) {
        let x = BitVec::new(a, w);
        prop_assert_eq!(x.zext(w + extra).as_u64(), x.as_u64());
        prop_assert_eq!(x.sext(w + extra).as_i64(), x.as_i64());
    }

    /// Reductions match their definitions.
    #[test]
    fn reductions(w in width(), a: u64) {
        let x = BitVec::new(a, w);
        prop_assert_eq!(x.reduce_or().is_true(), x.as_u64() != 0);
        prop_assert_eq!(x.reduce_and().is_true(), x == BitVec::ones(w));
        prop_assert_eq!(x.reduce_xor().is_true(), x.as_u64().count_ones() % 2 == 1);
    }
}
