//! Umbrella package for the UPEC reproduction workspace.
//!
//! This crate re-exports the individual workspace crates so that the
//! repository-level examples and integration tests can refer to every
//! subsystem through a single dependency. The actual functionality lives in:
//!
//! * [`obs`] — query-level telemetry: spans, counters and trace sinks,
//! * [`rtl`] — word-level RTL intermediate representation,
//! * [`sat`] — CDCL SAT solver,
//! * [`sim`] — cycle-accurate simulator,
//! * [`bmc`] — bit-blasting, bounded model checking and interval property
//!   checking (IPC),
//! * [`soc`] — the MiniRV SoC generator (RocketChip stand-in) with its
//!   vulnerability knobs,
//! * [`upec`] — Unique Program Execution Checking: the paper's contribution.
//!
//! # Example
//!
//! ```
//! use upec_repro::soc::{SocConfig, SocVariant};
//!
//! let config = SocConfig::new(SocVariant::Secure);
//! assert!(config.variant().is_secure());
//! ```

pub use bmc;
pub use obs;
pub use rtl;
pub use sat;
pub use sim;
pub use soc;
pub use upec;
