//! Cross-session learned-clause sharing for the instance sweep.
//!
//! Sessions scanning different [`crate::scenarios::ScenarioInstance`]s of the
//! *same* miter geometry solve near-identical CNFs: the transition relation
//! is identical frame for frame, only the scenario constraints and
//! commitments differ. Learned clauses whose derivations used nothing but
//! transition-definitional clauses (tracked by the solver's share-ceiling
//! taint, [`sat::Solver::drain_exportable`]) are therefore valid in every
//! sibling session — *up to the frame depth both sessions have encoded*.
//!
//! [`SharedClausePool`] is the exchange point [`crate::UpecEngine::run_instances`]
//! threads through its worker pool:
//!
//! * clauses live in canonical `(frame, slot, bit)` position form
//!   ([`bmc::SharedClause`]), so two sessions need not agree on CNF variable
//!   numbering — only on the transition fingerprint
//!   ([`bmc::Unrolling::share_fingerprint`]) that keys each shard;
//! * [`SharedClausePool::publish`] deduplicates syntactically so a clause
//!   exported by several sessions is stored (and re-imported) once;
//! * [`SharedClausePool::fetch`] hands each session only the clauses it has
//!   not seen yet, via a caller-held cursor.
//!
//! Frame-tag filtering and the freeze contract are enforced downstream:
//! [`bmc::Unrolling::import_shared`] refuses positions the importer has not
//! encoded, and [`sat::Solver::import_shared`] rejects clauses over
//! eliminated variables and refuses imports entirely while a DRAT proof log
//! is recording (so certified verdicts never depend on foreign lemmas).

use bmc::SharedClause;
use std::collections::{HashMap, HashSet};
use std::sync::Mutex;

/// One fingerprint's worth of shared clauses, in publication order.
#[derive(Default)]
struct Shard {
    clauses: Vec<SharedClause>,
    /// Dedup index: sorted canonical literal codes of every stored clause.
    seen: HashSet<Vec<u64>>,
}

/// A concurrent, fingerprint-keyed pool of exportable learned clauses.
///
/// The pool is shared by reference between the engine's worker threads; all
/// operations lock one internal mutex, which is negligible next to the SAT
/// queries between accesses.
///
/// # Examples
///
/// ```
/// use upec::SharedClausePool;
/// use bmc::SharedClause;
///
/// let pool = SharedClausePool::new();
/// let clause = SharedClause { lits: vec![2, 5], ceiling: 0 };
/// assert_eq!(pool.publish(42, vec![clause.clone()]), 1);
/// // Publishing the same clause again is a no-op.
/// assert_eq!(pool.publish(42, vec![clause.clone()]), 0);
///
/// // A fresh session drains everything once, then sees nothing new.
/// let (batch, cursor) = pool.fetch(42, 0);
/// assert_eq!(batch, vec![clause]);
/// assert!(pool.fetch(42, cursor).0.is_empty());
/// // Other fingerprints are isolated shards.
/// assert!(pool.fetch(7, 0).0.is_empty());
/// ```
#[derive(Default)]
pub struct SharedClausePool {
    shards: Mutex<HashMap<u64, Shard>>,
}

impl SharedClausePool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `clauses` to the `fingerprint` shard, dropping syntactic
    /// duplicates of already-stored clauses. Returns how many were actually
    /// added.
    pub fn publish(&self, fingerprint: u64, clauses: Vec<SharedClause>) -> usize {
        if clauses.is_empty() {
            return 0;
        }
        let mut shards = self.shards.lock().unwrap();
        let shard = shards.entry(fingerprint).or_default();
        let mut added = 0;
        for clause in clauses {
            let mut key = clause.lits.clone();
            key.sort_unstable();
            if shard.seen.insert(key) {
                shard.clauses.push(clause);
                added += 1;
            }
        }
        added
    }

    /// Returns every clause published to the `fingerprint` shard since
    /// `cursor`, plus the new cursor. Callers keep their own cursor per
    /// session, so each session imports each clause at most once (including
    /// the ones it published itself — the solver's `exported` flag makes the
    /// round trip a cheap no-op).
    pub fn fetch(&self, fingerprint: u64, cursor: usize) -> (Vec<SharedClause>, usize) {
        let shards = self.shards.lock().unwrap();
        let Some(shard) = shards.get(&fingerprint) else {
            return (Vec::new(), cursor);
        };
        let end = shard.clauses.len();
        if cursor >= end {
            return (Vec::new(), end);
        }
        (shard.clauses[cursor..].to_vec(), end)
    }

    /// Total clauses stored across all fingerprint shards.
    pub fn len(&self) -> usize {
        self.shards
            .lock()
            .unwrap()
            .values()
            .map(|s| s.clauses.len())
            .sum()
    }

    /// Whether the pool holds no clauses at all.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clause(lits: &[u64], ceiling: u32) -> SharedClause {
        SharedClause {
            lits: lits.to_vec(),
            ceiling,
        }
    }

    #[test]
    fn publish_deduplicates_within_and_across_batches() {
        let pool = SharedClausePool::new();
        let added = pool.publish(1, vec![clause(&[2, 4], 0), clause(&[4, 2], 1)]);
        // Literal order does not matter for identity.
        assert_eq!(added, 1);
        assert_eq!(pool.publish(1, vec![clause(&[2, 4], 0)]), 0);
        assert_eq!(pool.publish(1, vec![clause(&[2, 4, 6], 0)]), 1);
        assert_eq!(pool.len(), 2);
    }

    #[test]
    fn cursors_resume_where_they_left_off() {
        let pool = SharedClausePool::new();
        pool.publish(9, vec![clause(&[1, 3], 0)]);
        let (first, cursor) = pool.fetch(9, 0);
        assert_eq!(first.len(), 1);
        pool.publish(9, vec![clause(&[5, 7], 2)]);
        let (second, cursor) = pool.fetch(9, cursor);
        assert_eq!(second, vec![clause(&[5, 7], 2)]);
        assert_eq!(pool.fetch(9, cursor).0, Vec::new());
    }

    #[test]
    fn fingerprints_are_isolated() {
        let pool = SharedClausePool::new();
        pool.publish(1, vec![clause(&[1, 3], 0)]);
        assert!(pool.fetch(2, 0).0.is_empty());
        assert_eq!(pool.fetch(1, 0).0.len(), 1);
    }
}
