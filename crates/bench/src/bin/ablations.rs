//! Ablation studies for the design decisions called out in DESIGN.md:
//!
//! * **symbolic initial state (IPC) vs. reset-state BMC** — reset-state BMC
//!   misses the Orc vulnerability at windows where IPC finds it, because the
//!   attack state (pending write + transient load) takes many cycles to set
//!   up from reset;
//! * **window length scaling** — CNF size and solver effort as a function of
//!   the unrolling depth;
//! * **design size scaling** — proof cost as a function of cache lines and
//!   register count.
//!
//! ```text
//! cargo run --release -p bench --bin ablations
//! ```

use bench::secs;
use soc::{SocConfig, SocVariant};
use upec::{scenarios, SecretScenario, UpecChecker, UpecModel, UpecOptions};

fn main() {
    let checker = UpecChecker::new();

    println!("Ablation 1 — symbolic initial state (IPC) vs reset-state BMC, Orc variant");
    println!(
        "{:>8} {:>18} {:>18}",
        "window", "IPC (any state)", "BMC (from reset)"
    );
    let model = scenarios::by_id("orc")
        .expect("registered scenario")
        .build_model();
    for k in 1..=6 {
        let ipc = checker.check_architectural(&model, UpecOptions::window(k));
        let bmc = checker.check_architectural(&model, UpecOptions::window(k).from_reset());
        let describe = |o: &upec::UpecOutcome| {
            if o.alert().is_some() {
                "L-alert".to_string()
            } else if o.is_proven() {
                "no alert".to_string()
            } else {
                "unknown".to_string()
            }
        };
        println!("{k:>8} {:>18} {:>18}", describe(&ipc), describe(&bmc));
    }
    println!("(From reset the cache is empty and the secret cannot be cached, so the bounded");
    println!("reset-state check never observes the covert channel at these depths.)\n");

    println!("Ablation 2 — proof effort vs window length, secure design, D in cache");
    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>12}",
        "window", "variables", "clauses", "conflicts", "runtime"
    );
    let model = scenarios::by_id("secure-cached")
        .expect("registered scenario")
        .build_model();
    for k in 1..=5 {
        let outcome = checker.check_architectural(&model, UpecOptions::window(k));
        let s = outcome.stats();
        println!(
            "{k:>8} {:>12} {:>12} {:>12} {:>12}",
            s.variables,
            s.clauses,
            s.conflicts,
            secs(s.runtime)
        );
    }
    println!();

    println!("Ablation 3 — proof effort vs design size (window 2, secure design)");
    println!(
        "{:>22} {:>12} {:>12} {:>12}",
        "configuration", "variables", "clauses", "runtime"
    );
    for (regs, lines) in [(4u32, 2u32), (4, 4), (8, 4), (8, 8)] {
        let config = SocConfig::new(SocVariant::Secure)
            .with_registers(regs)
            .with_cache_lines(lines)
            .with_miss_latency(1)
            .with_store_latency(1);
        let model = UpecModel::new(&config, SecretScenario::InCache);
        let outcome = checker.check_architectural(&model, UpecOptions::window(2));
        let s = outcome.stats();
        println!(
            "{:>22} {:>12} {:>12} {:>12}",
            format!("{regs} regs / {lines} lines"),
            s.variables,
            s.clauses,
            secs(s.runtime)
        );
    }
    println!("\n(The paper's scalability discussion — 'feasible k' and future compositional");
    println!("UPEC — corresponds to the growth visible in ablations 2 and 3.)");
}
