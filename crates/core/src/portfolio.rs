//! A deterministic, single-core portfolio scheduler for one UPEC query.
//!
//! A portfolio runs the *same* query — one miter, one bound, one commitment
//! — under several solver search configurations at once, because no single
//! configuration wins on every instance (EMA restarts excel on unsat-like
//! queries, aggressive restarts on satisfiable ones, the plain baseline on
//! small ones). Classic portfolios buy this with threads and give up
//! reproducibility; this one buys it with *time slices* and keeps every run
//! byte-for-byte deterministic:
//!
//! * each member owns a private [`IncrementalSession`] (one resumable solver
//!   whose budgeted episodes continue exactly where they stopped), built
//!   **lazily**: only the default member exists up front, and the other
//!   members materialize the first time the schedule reaches them — a query
//!   the default configuration decides inside its first slice costs exactly
//!   one session, so the race is free on the common case and acts as an
//!   escalation path for the stragglers;
//! * the scheduler deals conflict-budget slices round-robin; the slice
//!   schedule is a **pure function of the query fingerprint and the slice
//!   index** ([`slice_budget`]) — no wall-clock, no thread timing;
//! * slices grow geometrically (doubling per full round), so the total work
//!   wasted on losing members is bounded by a constant factor of the
//!   winner's work;
//! * the first member to reach a definitive verdict wins; the losers'
//!   [`sat::CancelToken`]s are raised (they never run again) and the
//!   winner's exportable learned clauses are fed back through the
//!   [`SharedClausePool`], so sibling queries inherit what the race learned.
//!
//! The determinism contract and budget semantics are documented in
//! `docs/robustness.md`; `cargo run -p bench --bin portfolio_stats` measures
//! the scheduler against the single-configuration path.

use crate::engine::{IncrementalSession, SharedClausePool};
use crate::{UpecModel, UpecOptions, UpecOutcome};
use sat::{Budget, CancelToken, SearchConfig, StopCause};
use std::collections::BTreeSet;

/// The named search configurations every portfolio races: the full modern
/// loop, the plain Luby/phase-saving baseline, and a variant restarting four
/// times as eagerly (see [`sat::SearchConfig::aggressive_restart`]).
pub fn member_configs() -> [(&'static str, SearchConfig); 3] {
    [
        ("default", SearchConfig::default()),
        ("baseline", SearchConfig::baseline()),
        ("aggressive-restart", SearchConfig::aggressive_restart()),
    ]
}

/// The conflict budget of slice `index`, as a pure function of the query
/// `fingerprint` and the index — the whole determinism contract of the
/// scheduler rests on this function depending on nothing else.
///
/// The base allotment doubles after every full round over the `members`
/// configurations; a small deterministic jitter (up to a quarter of the
/// base, drawn from a SplitMix64 stream seeded by `fingerprint ^ index`)
/// desynchronizes the members' restart cadences so they explore genuinely
/// different search trajectories.
pub fn slice_budget(initial: u64, members: usize, fingerprint: u64, index: usize) -> u64 {
    let round = (index / members.max(1)) as u32;
    let base = initial.max(1).saturating_mul(1u64 << round.min(32));
    let jitter_span = base / 4 + 1;
    let jitter = rtl::SplitMix64::new(fingerprint ^ index as u64).gen_u64_below(jitter_span);
    base.saturating_add(jitter)
}

/// Options of a portfolio solve.
#[derive(Debug, Clone, Copy)]
pub struct PortfolioOptions {
    /// Base query options shared by every member. The `window` field is
    /// ignored (the bound is a [`solve_portfolio`] argument), `search` is
    /// overridden per member, and `certify` is forcibly disabled — certified
    /// verdicts come from the serial
    /// [`UpecEngine::check_certified`](crate::UpecEngine::check_certified)
    /// path, never from a race.
    pub base: UpecOptions,
    /// Conflict budget of a first-round slice (default `1 << 18`).
    ///
    /// The default is deliberately generous — large enough that the default
    /// configuration decides every registry query at `k = 2` inside its
    /// first slice, keeping the portfolio within the `1.05×` envelope of the
    /// single-configuration path. Racing (and its bounded redundant work)
    /// only engages on queries the default path cannot crack within the
    /// head start. Tests shrink this to force multi-slice schedules.
    pub initial_conflicts: u64,
    /// Hard cap on scheduled slices — a safety net against a query no member
    /// can decide; the race then reports the last member's
    /// [`UpecOutcome::Unknown`] (default 4096).
    pub max_slices: usize,
}

impl PortfolioOptions {
    /// Portfolio options on top of the given base query options.
    pub fn new(base: UpecOptions) -> Self {
        Self {
            base,
            initial_conflicts: 1 << 18,
            max_slices: 4096,
        }
    }

    /// Sets the first-round slice budget (builder style).
    pub fn with_initial_conflicts(mut self, conflicts: u64) -> Self {
        self.initial_conflicts = conflicts.max(1);
        self
    }

    /// Sets the slice-count safety cap (builder style).
    pub fn with_max_slices(mut self, slices: usize) -> Self {
        self.max_slices = slices.max(1);
        self
    }
}

impl Default for PortfolioOptions {
    fn default() -> Self {
        Self::new(UpecOptions::window(0))
    }
}

/// Record of one scheduled slice, in schedule order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SliceRecord {
    /// Slice index in the global schedule.
    pub slice: usize,
    /// Name of the member configuration that ran it.
    pub config: &'static str,
    /// Conflict budget the slice ran under ([`slice_budget`]).
    pub budget: u64,
    /// Conflicts actually spent by the slice.
    pub conflicts: u64,
    /// Why the slice stopped (`None` when it decided the query).
    pub stop: Option<StopCause>,
}

/// Result of one portfolio race.
#[derive(Debug)]
pub struct PortfolioReport {
    /// The verdict of the winning member ([`UpecOutcome::Unknown`] when no
    /// member decided within the schedule).
    pub outcome: UpecOutcome,
    /// Name of the winning member configuration, if the query was decided.
    pub winner: Option<&'static str>,
    /// Every scheduled slice, in order. Byte-reproducible: two races of the
    /// same query produce identical vectors.
    pub slices: Vec<SliceRecord>,
    /// Lifetime solver statistics of every member, in [`member_configs`]
    /// order.
    pub member_stats: Vec<(&'static str, sat::SolverStats)>,
    /// Total budget-exhausted episodes across all members.
    pub budget_exhaustions: u64,
    /// Total cancelled episodes across all members.
    pub cancellations: u64,
    /// Learned clauses the winner exported into the shared pool.
    pub exported_clauses: usize,
}

impl PortfolioReport {
    /// Total conflicts spent by all members.
    pub fn total_conflicts(&self) -> u64 {
        self.member_stats.iter().map(|(_, s)| s.conflicts).sum()
    }
}

/// Races the member configurations on one query — bound `k` of `model`'s
/// UPEC property restricted to `commitment` — and returns the first
/// definitive verdict.
///
/// With a `pool`, the winner's exportable learned clauses are published
/// under the session's share fingerprint (the PR-sharing path of
/// [`UpecEngine::run_instances`](crate::UpecEngine::run_instances)), and
/// every member imports eligible pool clauses before its first slice.
///
/// Determinism: the function is single-threaded and the slice schedule is a
/// pure function of the query fingerprint, so two calls with equal inputs
/// (including the pool contents) return byte-identical reports — the
/// `portfolio_stats --smoke` benchmark gate pins this.
///
/// # Panics
///
/// Panics like [`IncrementalSession::check_bound`] on a malformed
/// commitment.
pub fn solve_portfolio(
    model: &UpecModel,
    k: usize,
    commitment: &BTreeSet<String>,
    options: PortfolioOptions,
    pool: Option<&SharedClausePool>,
) -> PortfolioReport {
    let mut race_span = obs::span("upec.portfolio");
    race_span.attr_u64("window", k as u64);
    let configs = member_configs();
    let mut base = options.base;
    // A race must never log proofs: members import foreign clauses and an
    // undecided member's log would span unrelated episodes.
    base.certify = false;

    let spawn = |member: usize| {
        let mut session =
            IncrementalSession::with_options(model, base.with_search(configs[member].1));
        let token = CancelToken::new();
        session.set_cancel_token(Some(token.clone()));
        (session, token)
    };
    // Only the default member exists up front (its theory fingerprint seeds
    // the slice schedule); the others materialize when the schedule first
    // reaches them, so a query decided in slice 0 pays for one session.
    let mut sessions: Vec<Option<IncrementalSession>> = (0..configs.len()).map(|_| None).collect();
    let mut tokens: Vec<Option<CancelToken>> = (0..configs.len()).map(|_| None).collect();
    let (first_session, first_token) = spawn(0);
    let share_fingerprint = first_session.share_fingerprint();
    sessions[0] = Some(first_session);
    tokens[0] = Some(first_token);
    // The query fingerprint folds the bound into the theory fingerprint;
    // eager-mode sessions (no share fingerprint) fall back to a fixed tag so
    // the schedule stays deterministic there too.
    let fingerprint = share_fingerprint.unwrap_or(0x5eed_0bad_c0ff_ee42)
        ^ (k as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);

    let mut slices: Vec<SliceRecord> = Vec::new();
    let mut cursors = vec![0usize; configs.len()];
    let mut winner: Option<usize> = None;
    let mut outcome: Option<UpecOutcome> = None;

    for index in 0..options.max_slices {
        let member = index % configs.len();
        if sessions[member].is_none() {
            let (session, token) = spawn(member);
            sessions[member] = Some(session);
            tokens[member] = Some(token);
        }
        let session = sessions[member].as_mut().expect("materialized above");
        if let (Some(pool), Some(fp)) = (pool, share_fingerprint) {
            let (batch, next) = pool.fetch(fp, cursors[member]);
            cursors[member] = next;
            if !batch.is_empty() {
                // The importer skips clauses over frames the session has not
                // encoded yet, so feeding the whole batch is safe.
                session.import_shared(&batch);
            }
        }
        let budget = slice_budget(options.initial_conflicts, configs.len(), fingerprint, index);
        session.set_budget(Budget::conflicts(budget));
        let before = session.solver_stats();
        let mut slice_span = obs::span("upec.portfolio.slice");
        slice_span.attr_str("config", configs[member].0);
        slice_span.attr_u64("slice", index as u64);
        slice_span.attr_u64("budget_conflicts", budget);
        let result = session.check_bound(k, commitment);
        let spent = session.solver_stats().delta_since(&before);
        let stop = session.last_stop();
        slice_span.attr_str("verdict", result.verdict_name());
        drop(slice_span);
        slices.push(SliceRecord {
            slice: index,
            config: configs[member].0,
            budget,
            conflicts: spent.conflicts,
            stop,
        });
        match result {
            UpecOutcome::Unknown(_) if stop == Some(StopCause::BudgetExhausted) => continue,
            // A conflict-limit or cancellation stop is the caller's doing;
            // report it honestly instead of spending other members' slices.
            UpecOutcome::Unknown(_) => {
                outcome = Some(result);
                break;
            }
            decided => {
                winner = Some(member);
                outcome = Some(decided);
                break;
            }
        }
    }

    // Stop the losers: their tokens stay raised, so even a caller that keeps
    // the sessions alive cannot accidentally resume a lost race member.
    if let Some(w) = winner {
        for (member, token) in tokens.iter().enumerate() {
            if member != w {
                if let Some(token) = token {
                    token.cancel();
                }
            }
        }
    }
    let mut exported_clauses = 0usize;
    if let (Some(w), Some(pool), Some(fp)) = (winner, pool, share_fingerprint) {
        let mut export = Vec::new();
        sessions[w]
            .as_mut()
            .expect("the winner ran at least one slice")
            .export_shared(&mut export);
        exported_clauses = export.len();
        if !export.is_empty() {
            pool.publish(fp, export);
        }
    }

    // Members the schedule never reached report pristine (default) stats.
    let member_stats: Vec<(&'static str, sat::SolverStats)> = configs
        .iter()
        .zip(&sessions)
        .map(|((name, _), session)| {
            (
                *name,
                session
                    .as_ref()
                    .map(|s| s.solver_stats())
                    .unwrap_or_default(),
            )
        })
        .collect();
    let budget_exhaustions = member_stats.iter().map(|(_, s)| s.budget_exhaustions).sum();
    let cancellations = member_stats.iter().map(|(_, s)| s.cancellations).sum();
    let outcome = outcome.unwrap_or_else(|| {
        // max_slices == 0 is unreachable (clamped to 1), but stay total.
        UpecOutcome::Unknown(crate::UpecStats::default())
    });
    race_span.attr_u64("slices", slices.len() as u64);
    race_span.attr_str("verdict", outcome.verdict_name());
    if let Some(w) = winner {
        race_span.attr_str("winner", configs[w].0);
    }
    obs::counter("upec.portfolio.slices", slices.len() as u64);
    obs::counter("upec.portfolio.budget_exhaustions", budget_exhaustions);
    PortfolioReport {
        outcome,
        winner: winner.map(|w| configs[w].0),
        slices,
        member_stats,
        budget_exhaustions,
        cancellations,
        exported_clauses,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{full_commitment, SecretScenario, UpecChecker, UpecModel};
    use soc::{SocConfig, SocVariant};

    fn tiny(variant: SocVariant) -> SocConfig {
        SocConfig::new(variant)
            .with_registers(4)
            .with_cache_lines(2)
            .with_miss_latency(1)
            .with_store_latency(1)
    }

    #[test]
    fn slice_budgets_are_pure_and_grow_geometrically() {
        let members = member_configs().len();
        for fp in [0u64, 0xdead_beef, u64::MAX] {
            for index in 0..24 {
                let a = slice_budget(64, members, fp, index);
                let b = slice_budget(64, members, fp, index);
                assert_eq!(a, b, "slice_budget must be a pure function");
                // Base doubles per round; jitter adds at most a quarter.
                let round = (index / members) as u32;
                let base = 64u64 << round;
                assert!(a >= base && a <= base + base / 4, "slice {index}: {a}");
            }
        }
        assert_ne!(
            slice_budget(64, members, 1, 0),
            slice_budget(64, members, 2, 0),
            "different queries should draw different jitter"
        );
    }

    /// The acceptance property of the scheduler: the race reaches the same
    /// verdict as the single-configuration path, and two races of the same
    /// query are byte-identical (slices, winner, member stats).
    #[test]
    fn portfolio_agrees_with_single_config_and_is_reproducible() {
        for (variant, scenario, k) in [
            (SocVariant::Orc, SecretScenario::InCache, 2),
            (SocVariant::Secure, SecretScenario::NotInCache, 1),
        ] {
            let model = UpecModel::new(&tiny(variant), scenario);
            let commitment = full_commitment(&model);
            let single = UpecChecker::new().check(&model, UpecOptions::window(k), &commitment);

            let options = PortfolioOptions::default().with_initial_conflicts(8);
            let first = solve_portfolio(&model, k, &commitment, options, None);
            let second = solve_portfolio(&model, k, &commitment, options, None);

            assert_eq!(
                first.outcome.verdict_name(),
                single.verdict_name(),
                "{variant:?}: portfolio diverged from the single-config path"
            );
            assert_eq!(
                first.slices, second.slices,
                "{variant:?}: schedule not reproducible"
            );
            assert_eq!(first.winner, second.winner, "{variant:?}");
            assert_eq!(first.member_stats, second.member_stats, "{variant:?}");
            assert!(first.winner.is_some(), "{variant:?}: the race must decide");
        }
    }

    /// The race stops at the first definitive slice: nothing is scheduled
    /// after the winner, and the winning slice is the only one without a
    /// stop cause.
    #[test]
    fn first_finisher_wins_and_ends_the_schedule() {
        let model = UpecModel::new(&tiny(SocVariant::Secure), SecretScenario::NotInCache);
        let commitment = full_commitment(&model);
        let report = solve_portfolio(
            &model,
            1,
            &commitment,
            PortfolioOptions::default().with_initial_conflicts(8),
            None,
        );
        let winner = report.winner.expect("the query is decidable");
        let last = report.slices.last().expect("at least one slice ran");
        assert_eq!(last.config, winner);
        assert_eq!(last.stop, None, "the deciding slice has no stop cause");
        for slice in &report.slices[..report.slices.len() - 1] {
            assert_eq!(
                slice.stop,
                Some(StopCause::BudgetExhausted),
                "every earlier slice stopped on its budget"
            );
        }
    }
}
