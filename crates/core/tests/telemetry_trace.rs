//! End-to-end telemetry of one UPEC query: the span taxonomy documented in
//! `docs/observability.md` must actually come out of `check_bound`, with
//! correct nesting, close ordering, verdict attribution and counter
//! placement — including the certificate spans (`sat.proof_log` under the
//! solve, `cert.check` for the independent re-check). Collected through the
//! in-memory sink; the JSONL wire format of the same records is
//! golden-tested in the `obs` crate itself.
//!
//! All assertions live in a single test because the sink is process-global:
//! one install, one traced query, many checks.

use std::sync::Arc;
use upec::engine::IncrementalSession;
use upec::scenarios;
use upec::UpecOptions;

fn u64_attr(span: &obs::SpanRecord, key: &str) -> Option<u64> {
    span.attrs.iter().find_map(|(k, v)| match v {
        obs::AttrValue::U64(n) if *k == key => Some(*n),
        _ => None,
    })
}

fn str_attr(span: &obs::SpanRecord, key: &str) -> Option<String> {
    span.attrs.iter().find_map(|(k, v)| match v {
        obs::AttrValue::Str(s) if *k == key => Some(s.clone()),
        _ => None,
    })
}

#[test]
fn traced_query_produces_the_documented_span_tree() {
    let spec = scenarios::by_id("cache-footprint").expect("registered");

    // Install before model construction: transition compilation (and its
    // COI analysis) happens while the model is built.
    let sink = Arc::new(obs::MemorySink::new());
    obs::install(sink.clone());
    let model = spec.build_model();
    let commitment = spec.commitment_set(&model);
    let options = UpecOptions::window(1).with_certificates();
    let mut session = IncrementalSession::with_options(&model, options);
    let (outcome, certificate) = session
        .check_bound_certified(1, &commitment)
        .expect("certified query on a logging session");
    let certificate = certificate.expect("a decided bound carries a certificate");
    let check = certificate.check(&model);
    obs::uninstall();
    assert!(
        check.is_ok(),
        "certificate must re-check: {:?}",
        check.err()
    );

    let spans = sink.spans();
    let counters = sink.counters();

    // Root: the query span, carrying window and verdict.
    let root = spans
        .iter()
        .find(|s| s.name == "upec.check_bound")
        .expect("query root span recorded");
    assert_eq!(root.parent, None, "check_bound is the trace root");
    assert_eq!(u64_attr(root, "window"), Some(1));
    assert_eq!(
        str_attr(root, "verdict").as_deref(),
        Some(outcome.verdict_name()),
        "root span verdict matches the engine verdict"
    );

    // Encode phase: a direct child of the root.
    let encode = spans
        .iter()
        .find(|s| s.name == "bmc.encode")
        .expect("encode span recorded");
    assert_eq!(encode.parent, Some(root.id), "encode nests under the query");

    // Search: at least one solver episode, a descendant of the root.
    let search = spans
        .iter()
        .find(|s| s.name == "sat.search")
        .expect("search span recorded");
    let mut ancestor = search.parent;
    let mut reaches_root = false;
    while let Some(id) = ancestor {
        if id == root.id {
            reaches_root = true;
            break;
        }
        ancestor = spans.iter().find(|s| s.id == id).and_then(|s| s.parent);
    }
    assert!(
        reaches_root,
        "search span is a descendant of the query root"
    );
    assert!(
        str_attr(search, "result").is_some(),
        "search span records its result"
    );

    // The compile span fired during session construction, outside the query.
    let compile = spans
        .iter()
        .find(|s| s.name == "bmc.compile")
        .expect("compile span recorded");
    assert_eq!(compile.parent, None, "compilation is not part of the query");
    assert!(u64_attr(compile, "scheduled_slots").is_some());
    assert!(
        spans.iter().any(|s| s.name == "rtl.coi"),
        "COI analysis span recorded"
    );

    // Close ordering: children close before their parents, so the root is
    // recorded after encode and after the search episodes.
    let pos = |id: u64| spans.iter().position(|s| s.id == id).unwrap();
    assert!(pos(encode.id) < pos(root.id));
    assert!(pos(search.id) < pos(root.id));

    // Spans nest in time: every child lies inside its parent's interval
    // (same monotonic clock, so this is exact).
    for child in &spans {
        if let Some(parent) = child.parent.and_then(|p| spans.iter().find(|s| s.id == p)) {
            assert!(
                child.start_ns >= parent.start_ns
                    && child.start_ns + child.duration_ns <= parent.start_ns + parent.duration_ns,
                "span {} [{}..{}] escapes its parent {} [{}..{}]",
                child.name,
                child.start_ns,
                child.start_ns + child.duration_ns,
                parent.name,
                parent.start_ns,
                parent.start_ns + parent.duration_ns,
            );
        }
    }

    // Phase durations are slices of the root: named phases cannot exceed it.
    let sum = |name: &str| -> u64 {
        spans
            .iter()
            .filter(|s| s.name == name)
            .map(|s| s.duration_ns)
            .sum()
    };
    let sliced = sum("bmc.encode") + sum("sat.simplify") + sum("sat.search");
    assert!(
        sliced <= root.duration_ns,
        "phases {sliced}ns exceed the root span {}ns",
        root.duration_ns
    );

    // Solver counters are attributed to the search span that emitted them.
    for name in ["propagations", "conflicts", "restarts", "arena_collections"] {
        let counter = counters
            .iter()
            .find(|c| c.name == name)
            .unwrap_or_else(|| panic!("counter `{name}` emitted"));
        let owner = counter.span.expect("counter attributed to a span");
        assert!(
            spans
                .iter()
                .any(|s| s.id == owner && s.name == "sat.search"),
            "counter `{name}` attributed to a search span"
        );
    }

    // The query's stats agree with the counters on the search span.
    let stats = outcome.stats();
    let total = |name: &str| -> u64 {
        counters
            .iter()
            .filter(|c| c.name == name)
            .map(|c| c.value)
            .sum()
    };
    assert_eq!(total("conflicts"), stats.conflicts);
    assert_eq!(total("restarts"), stats.restarts);
    assert_eq!(total("arena_collections"), stats.arena_collections);
    // Propagations also accrue inside the simplify pipeline (failed-literal
    // probing), outside any search span — so the search spans can only
    // account for at most the query total.
    assert!(total("propagations") <= stats.propagations);

    // Proof logging: a marker child of a search span, sized like the log.
    let proof_log = spans
        .iter()
        .find(|s| s.name == "sat.proof_log")
        .expect("proof_log span recorded for a certified query");
    let parent = proof_log
        .parent
        .and_then(|p| spans.iter().find(|s| s.id == p))
        .expect("proof_log span has a parent");
    assert_eq!(parent.name, "sat.search", "proof_log nests under its solve");
    assert!(u64_attr(proof_log, "events").is_some());
    assert!(u64_attr(proof_log, "axioms").is_some());
    assert!(u64_attr(proof_log, "size_bytes").is_some());

    // Certificate checking: an independent root span carrying the
    // certificate's kind, window and size.
    let cert = spans
        .iter()
        .find(|s| s.name == "cert.check")
        .expect("cert.check span recorded");
    assert_eq!(cert.parent, None, "checking is independent of the query");
    assert_eq!(
        str_attr(cert, "kind").as_deref(),
        Some(certificate.kind_name())
    );
    assert_eq!(u64_attr(cert, "window"), Some(1));
    assert_eq!(
        u64_attr(cert, "size_bytes"),
        Some(certificate.size_bytes() as u64)
    );
    assert_eq!(str_attr(cert, "result").as_deref(), Some("ok"));
}
