//! Tseitin encoding of Boolean gates into a SAT solver.

use sat::{Lit, SimplifyConfig, Solver};
use std::collections::HashMap;

/// Key used for structural hashing of gates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum GateKey {
    And(Lit, Lit),
    Xor(Lit, Lit),
    Mux(Lit, Lit, Lit),
}

impl GateKey {
    /// Whether any operand literal satisfies the predicate.
    fn any_lit(&self, mut pred: impl FnMut(Lit) -> bool) -> bool {
        match *self {
            GateKey::And(a, b) | GateKey::Xor(a, b) => pred(a) || pred(b),
            GateKey::Mux(c, t, e) => pred(c) || pred(t) || pred(e),
        }
    }
}

/// Helper that allocates Tseitin variables for Boolean gates on top of a
/// [`sat::Solver`].
///
/// The builder owns the solver for the duration of an encoding session and
/// provides a constant-true literal plus standard gate constructors. Constant
/// operands are folded and structurally identical gates are hash-consed so
/// that the generated CNF stays small — in particular, the two structurally
/// identical SoC instances of a UPEC miter largely collapse onto the same
/// variables wherever their inputs are shared.
#[derive(Debug)]
pub struct GateBuilder {
    solver: Solver,
    true_lit: Lit,
    structural: HashMap<GateKey, Lit>,
}

impl GateBuilder {
    /// Creates a builder with a fresh solver.
    pub fn new() -> Self {
        let mut solver = Solver::new();
        let true_lit = solver.new_var().positive();
        solver.freeze(true_lit);
        solver.add_clause([true_lit]);
        Self {
            solver,
            true_lit,
            structural: HashMap::new(),
        }
    }

    /// Freezes a literal's variable: the CNF simplifier will never eliminate
    /// it, so it stays legal in later clauses, assumptions and model reads.
    /// See [`sat::Solver::freeze_var`] for the underlying contract.
    pub fn freeze(&mut self, l: Lit) {
        self.solver.freeze(l);
    }

    /// Runs the solver's incremental-safe simplification pipeline
    /// ([`sat::Solver::simplify_with`]) and then purges every structural-hash
    /// entry that refers to an eliminated variable, so a later identical gate
    /// request re-encodes with a fresh output instead of resurrecting a
    /// variable whose defining clauses are gone.
    ///
    /// Returns `false` if simplification proved the formula unsatisfiable.
    pub fn simplify(&mut self, config: &SimplifyConfig) -> bool {
        let ok = self.solver.simplify_with(config);
        let solver = &self.solver;
        self.structural.retain(|key, out| {
            !solver.is_eliminated(out.var()) && !key.any_lit(|l| solver.is_eliminated(l.var()))
        });
        ok
    }

    /// Literal that is constrained to be true.
    pub fn true_lit(&self) -> Lit {
        self.true_lit
    }

    /// Literal that is constrained to be false.
    pub fn false_lit(&self) -> Lit {
        !self.true_lit
    }

    /// Converts a Boolean constant into a literal.
    pub fn constant(&self, value: bool) -> Lit {
        if value {
            self.true_lit
        } else {
            self.false_lit()
        }
    }

    /// Whether a literal is the constant true literal.
    fn is_true(&self, l: Lit) -> bool {
        l == self.true_lit
    }

    /// Whether a literal is the constant false literal.
    fn is_false(&self, l: Lit) -> bool {
        l == self.false_lit()
    }

    /// Allocates a fresh unconstrained literal.
    pub fn fresh(&mut self) -> Lit {
        self.solver.new_var().positive()
    }

    /// Adds a clause directly.
    pub fn add_clause<I>(&mut self, lits: I)
    where
        I: IntoIterator<Item = Lit>,
    {
        self.solver.add_clause(lits);
    }

    /// Asserts that a literal is true.
    pub fn assert_true(&mut self, l: Lit) {
        self.solver.add_clause([l]);
    }

    /// Asserts that two literals are equal.
    pub fn assert_equal(&mut self, a: Lit, b: Lit) {
        self.solver.add_clause([!a, b]);
        self.solver.add_clause([a, !b]);
    }

    /// `out = a AND b`.
    pub fn and(&mut self, a: Lit, b: Lit) -> Lit {
        if self.is_false(a) || self.is_false(b) {
            return self.false_lit();
        }
        if self.is_true(a) {
            return b;
        }
        if self.is_true(b) {
            return a;
        }
        if a == b {
            return a;
        }
        if a == !b {
            return self.false_lit();
        }
        let key = GateKey::And(a.min(b), a.max(b));
        if let Some(&out) = self.structural.get(&key) {
            return out;
        }
        let out = self.fresh();
        self.solver.add_clause([!out, a]);
        self.solver.add_clause([!out, b]);
        self.solver.add_clause([out, !a, !b]);
        self.structural.insert(key, out);
        out
    }

    /// `out = a OR b`.
    pub fn or(&mut self, a: Lit, b: Lit) -> Lit {
        let na = !a;
        let nb = !b;
        let and = self.and(na, nb);
        !and
    }

    /// `out = a XOR b`.
    pub fn xor(&mut self, a: Lit, b: Lit) -> Lit {
        if self.is_false(a) {
            return b;
        }
        if self.is_false(b) {
            return a;
        }
        if self.is_true(a) {
            return !b;
        }
        if self.is_true(b) {
            return !a;
        }
        if a == b {
            return self.false_lit();
        }
        if a == !b {
            return self.true_lit;
        }
        let key = GateKey::Xor(a.min(b), a.max(b));
        if let Some(&out) = self.structural.get(&key) {
            return out;
        }
        let out = self.fresh();
        self.solver.add_clause([!out, a, b]);
        self.solver.add_clause([!out, !a, !b]);
        self.solver.add_clause([out, !a, b]);
        self.solver.add_clause([out, a, !b]);
        self.structural.insert(key, out);
        out
    }

    /// `out = (a == b)` (XNOR).
    pub fn xnor(&mut self, a: Lit, b: Lit) -> Lit {
        let x = self.xor(a, b);
        !x
    }

    /// `out = cond ? then_ : else_`.
    pub fn mux(&mut self, cond: Lit, then_: Lit, else_: Lit) -> Lit {
        if self.is_true(cond) {
            return then_;
        }
        if self.is_false(cond) {
            return else_;
        }
        if then_ == else_ {
            return then_;
        }
        let key = GateKey::Mux(cond, then_, else_);
        if let Some(&out) = self.structural.get(&key) {
            return out;
        }
        let out = self.fresh();
        self.solver.add_clause([!cond, !then_, out]);
        self.solver.add_clause([!cond, then_, !out]);
        self.solver.add_clause([cond, !else_, out]);
        self.solver.add_clause([cond, else_, !out]);
        self.structural.insert(key, out);
        out
    }

    /// AND over many literals.
    pub fn and_many(&mut self, lits: &[Lit]) -> Lit {
        let mut acc = self.true_lit;
        for &l in lits {
            acc = self.and(acc, l);
        }
        acc
    }

    /// OR over many literals.
    pub fn or_many(&mut self, lits: &[Lit]) -> Lit {
        let mut acc = self.false_lit();
        for &l in lits {
            acc = self.or(acc, l);
        }
        acc
    }

    /// Full adder: returns `(sum, carry_out)`.
    pub fn full_adder(&mut self, a: Lit, b: Lit, carry_in: Lit) -> (Lit, Lit) {
        let axb = self.xor(a, b);
        let sum = self.xor(axb, carry_in);
        let ab = self.and(a, b);
        let c_axb = self.and(axb, carry_in);
        let carry = self.or(ab, c_axb);
        (sum, carry)
    }

    /// Access to the underlying solver (e.g. to run queries).
    pub fn solver_mut(&mut self) -> &mut Solver {
        &mut self.solver
    }

    /// Read-only access to the underlying solver.
    pub fn solver(&self) -> &Solver {
        &self.solver
    }
}

impl Default for GateBuilder {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sat::SatResult;

    fn all_assignments(n: usize) -> Vec<Vec<bool>> {
        (0..1usize << n)
            .map(|m| (0..n).map(|i| (m >> i) & 1 == 1).collect())
            .collect()
    }

    /// Exhaustively checks a 2-input gate against a reference function by
    /// querying the solver once per input/output combination.
    fn check_gate2(
        build: impl Fn(&mut GateBuilder, Lit, Lit) -> Lit,
        reference: impl Fn(bool, bool) -> bool,
    ) {
        for assignment in all_assignments(2) {
            let mut g = GateBuilder::new();
            let a = g.fresh();
            let b = g.fresh();
            let out = build(&mut g, a, b);
            let expected = reference(assignment[0], assignment[1]);
            let assumption = [
                if assignment[0] { a } else { !a },
                if assignment[1] { b } else { !b },
                if expected { out } else { !out },
            ];
            assert!(
                g.solver_mut().solve_with_assumptions(&assumption).is_sat(),
                "gate disagrees with reference for {assignment:?}"
            );
            let wrong = [
                if assignment[0] { a } else { !a },
                if assignment[1] { b } else { !b },
                if expected { !out } else { out },
            ];
            assert!(
                g.solver_mut().solve_with_assumptions(&wrong).is_unsat(),
                "gate output is not functionally determined for {assignment:?}"
            );
        }
    }

    #[test]
    fn and_or_xor_match_reference() {
        check_gate2(|g, a, b| g.and(a, b), |a, b| a && b);
        check_gate2(|g, a, b| g.or(a, b), |a, b| a || b);
        check_gate2(|g, a, b| g.xor(a, b), |a, b| a ^ b);
        check_gate2(|g, a, b| g.xnor(a, b), |a, b| a == b);
    }

    #[test]
    fn mux_matches_reference() {
        for assignment in all_assignments(3) {
            let mut g = GateBuilder::new();
            let c = g.fresh();
            let t = g.fresh();
            let e = g.fresh();
            let out = g.mux(c, t, e);
            let expected = if assignment[0] {
                assignment[1]
            } else {
                assignment[2]
            };
            let mut assumption = vec![
                if assignment[0] { c } else { !c },
                if assignment[1] { t } else { !t },
                if assignment[2] { e } else { !e },
            ];
            assumption.push(if expected { out } else { !out });
            assert!(g.solver_mut().solve_with_assumptions(&assumption).is_sat());
            *assumption.last_mut().unwrap() = if expected { !out } else { out };
            assert!(g
                .solver_mut()
                .solve_with_assumptions(&assumption)
                .is_unsat());
        }
    }

    #[test]
    fn constant_folding_avoids_new_variables() {
        let mut g = GateBuilder::new();
        let a = g.fresh();
        let vars_before = g.solver().num_vars();
        let t = g.true_lit();
        let f = g.false_lit();
        assert_eq!(g.and(a, t), a);
        assert_eq!(g.and(a, f), f);
        assert_eq!(g.or(a, f), a);
        assert_eq!(g.xor(a, f), a);
        assert_eq!(g.xor(a, t), !a);
        assert_eq!(g.mux(t, a, f), a);
        assert_eq!(g.and(a, !a), f);
        assert_eq!(g.xor(a, a), f);
        assert_eq!(g.solver().num_vars(), vars_before);
    }

    #[test]
    fn full_adder_truth_table() {
        for assignment in all_assignments(3) {
            let mut g = GateBuilder::new();
            let a = g.fresh();
            let b = g.fresh();
            let c = g.fresh();
            let (sum, carry) = g.full_adder(a, b, c);
            let total = assignment.iter().filter(|&&x| x).count();
            let expect_sum = total % 2 == 1;
            let expect_carry = total >= 2;
            let assumption = [
                if assignment[0] { a } else { !a },
                if assignment[1] { b } else { !b },
                if assignment[2] { c } else { !c },
            ];
            match g.solver_mut().solve_with_assumptions(&assumption) {
                SatResult::Sat(m) => {
                    assert_eq!(m.lit_is_true(sum), expect_sum, "sum for {assignment:?}");
                    assert_eq!(
                        m.lit_is_true(carry),
                        expect_carry,
                        "carry for {assignment:?}"
                    );
                }
                other => panic!("expected sat, got {other:?}"),
            }
        }
    }

    #[test]
    fn assert_equal_links_literals() {
        let mut g = GateBuilder::new();
        let a = g.fresh();
        let b = g.fresh();
        g.assert_equal(a, b);
        assert!(g.solver_mut().solve_with_assumptions(&[a, !b]).is_unsat());
        assert!(g.solver_mut().solve_with_assumptions(&[a, b]).is_sat());
    }
}
