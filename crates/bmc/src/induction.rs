//! k-induction proofs of single-bit invariants.
//!
//! The UPEC methodology (paper Sec. VI) completes bounded P-alert analyses
//! with inductive proofs: once the bounded search has shown which
//! microarchitectural registers can observe the secret, an inductive argument
//! shows the difference can never propagate further. This module provides the
//! generic k-induction machinery; the UPEC-specific closure condition is
//! built on top of it in the `upec` crate.

use crate::{UnrollOptions, Unrolling};
use rtl::{Netlist, SignalId};
use sat::SatResult;
use std::time::{Duration, Instant};

/// Result of a k-induction proof attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InductionOutcome {
    /// Both the base case and the induction step hold: the invariant is
    /// proven for all reachable states.
    Proven {
        /// Induction depth that succeeded.
        depth: usize,
        /// Wall-clock time spent.
        runtime: Duration,
    },
    /// The base case fails: the invariant is violated within `depth` cycles
    /// of the initial state.
    BaseCaseFailed {
        /// Cycle at which the violation occurs.
        failing_cycle: usize,
        /// Wall-clock time spent.
        runtime: Duration,
    },
    /// The induction step fails at the given depth; the invariant may still
    /// hold but a deeper induction (or a stronger invariant) is needed.
    StepFailed {
        /// Depth at which the step could not be closed.
        depth: usize,
        /// Wall-clock time spent.
        runtime: Duration,
    },
    /// A solver resource limit was hit.
    Unknown {
        /// Wall-clock time spent.
        runtime: Duration,
    },
}

impl InductionOutcome {
    /// Whether the invariant was proven.
    pub fn is_proven(&self) -> bool {
        matches!(self, InductionOutcome::Proven { .. })
    }
}

/// k-induction prover for single-bit invariant signals.
///
/// The invariant is proven in two parts:
///
/// * **base**: starting from the netlist's initial values, the invariant
///   holds during the first `depth` cycles;
/// * **step**: assuming the invariant holds in frames `0..depth` (from an
///   arbitrary, symbolic state that satisfies the side constraints), it also
///   holds in frame `depth`.
///
/// # Examples
///
/// ```
/// use rtl::{Netlist, BitVec};
/// use bmc::{InductionProver, UnrollOptions};
///
/// // A one-hot ring counter stays one-hot forever.
/// let mut n = Netlist::new("ring");
/// let r = n.register_init("r", 4, BitVec::new(0b0001, 4));
/// let hi = n.slice(r.value(), 2, 0);
/// let lo = n.slice(r.value(), 3, 3);
/// let rotated = n.concat(hi, lo);
/// n.set_next(r, rotated);
/// // Invariant: exactly the parity trick "r != 0" (weaker than one-hot but
/// // inductive for rotation).
/// let nonzero = n.reduce_or(r.value());
/// n.output("nonzero", nonzero);
///
/// let prover = InductionProver::new(UnrollOptions::default());
/// assert!(prover.prove(&n, nonzero, &[], 1).is_proven());
/// ```
#[derive(Debug, Clone, Default)]
pub struct InductionProver {
    options: UnrollOptions,
}

impl InductionProver {
    /// Creates a prover with the given unrolling options (the
    /// `use_initial_values` flag is overridden per phase as required by the
    /// base case and step).
    pub fn new(options: UnrollOptions) -> Self {
        Self { options }
    }

    /// Attempts to prove that `invariant` (a single-bit signal) holds in all
    /// reachable states, assuming the single-bit `constraints` hold in every
    /// frame (these play the role of the UPEC side constraints: cache-monitor
    /// validity, secure system software, and so on).
    ///
    /// # Panics
    ///
    /// Panics if `invariant` or a constraint is not a single-bit signal.
    pub fn prove(
        &self,
        netlist: &Netlist,
        invariant: SignalId,
        constraints: &[SignalId],
        depth: usize,
    ) -> InductionOutcome {
        let start = Instant::now();
        let depth = depth.max(1);

        // Base case: from the initial state the invariant holds for
        // `depth` cycles (only meaningful when initial values exist; with a
        // fully symbolic design the base case is vacuous and skipped).
        let has_initial_state = netlist.registers().iter().any(|r| r.init.is_some());
        if has_initial_state {
            let mut base_options = self.options;
            base_options.use_initial_values = true;
            let mut unrolling = Unrolling::new(netlist, base_options);
            unrolling.extend_to(depth - 1);
            for frame in 0..depth {
                for &c in constraints {
                    unrolling
                        .assume_signal_true(frame, c)
                        .expect("constraint must be a single-bit signal");
                }
            }
            for frame in 0..depth {
                let lit = unrolling
                    .bit_lit(frame, invariant)
                    .expect("invariant must be a single-bit signal");
                match unrolling.solve(&[!lit]) {
                    SatResult::Sat(_) => {
                        return InductionOutcome::BaseCaseFailed {
                            failing_cycle: frame,
                            runtime: start.elapsed(),
                        }
                    }
                    SatResult::Unknown => {
                        return InductionOutcome::Unknown {
                            runtime: start.elapsed(),
                        }
                    }
                    SatResult::Unsat => {}
                }
            }
        }

        // Induction step: from any state satisfying the invariant (and the
        // constraints) for `depth` consecutive cycles, the invariant holds in
        // the next cycle.
        let mut step_options = self.options;
        step_options.use_initial_values = false;
        let mut unrolling = Unrolling::new(netlist, step_options);
        unrolling.extend_to(depth);
        for frame in 0..=depth {
            for &c in constraints {
                unrolling
                    .assume_signal_true(frame, c)
                    .expect("constraint must be a single-bit signal");
            }
        }
        for frame in 0..depth {
            unrolling
                .assume_signal_true(frame, invariant)
                .expect("invariant must be a single-bit signal");
        }
        let goal = unrolling
            .bit_lit(depth, invariant)
            .expect("invariant must be a single-bit signal");
        match unrolling.solve(&[!goal]) {
            SatResult::Unsat => InductionOutcome::Proven {
                depth,
                runtime: start.elapsed(),
            },
            SatResult::Sat(_) => InductionOutcome::StepFailed {
                depth,
                runtime: start.elapsed(),
            },
            SatResult::Unknown => InductionOutcome::Unknown {
                runtime: start.elapsed(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtl::BitVec;

    /// A counter that wraps at 10; the invariant "count < 10" is inductive
    /// relative to itself plus the wrap logic... but only if we also know
    /// count never exceeds 10, so count <= 10 is the inductive strengthening.
    fn mod10_counter() -> (Netlist, SignalId, SignalId) {
        let mut n = Netlist::new("mod10");
        let c = n.register_init("c", 4, BitVec::zero(4));
        let nine = n.lit(9, 4);
        let at_wrap = n.eq(c.value(), nine);
        let one = n.lit(1, 4);
        let plus = n.add(c.value(), one);
        let zero = n.lit(0, 4);
        let next = n.mux(at_wrap, zero, plus);
        n.set_next(c, next);
        let ten = n.lit(10, 4);
        let below_ten = n.ult(c.value(), ten);
        let twelve = n.lit(12, 4);
        let below_twelve = n.ult(c.value(), twelve);
        n.output("below_ten", below_ten);
        n.output("below_twelve", below_twelve);
        (n, below_ten, below_twelve)
    }

    #[test]
    fn inductive_invariant_is_proven() {
        let (n, below_ten, _) = mod10_counter();
        let prover = InductionProver::new(UnrollOptions::default());
        let outcome = prover.prove(&n, below_ten, &[], 1);
        assert!(outcome.is_proven(), "outcome: {outcome:?}");
    }

    #[test]
    fn non_inductive_invariant_fails_the_step() {
        // "below twelve" is true in all reachable states but is NOT inductive
        // at depth 1: from the unreachable state c == 11 the next state is 12.
        let (n, _, below_twelve) = mod10_counter();
        let prover = InductionProver::new(UnrollOptions::default());
        let outcome = prover.prove(&n, below_twelve, &[], 1);
        assert!(
            matches!(outcome, InductionOutcome::StepFailed { .. }),
            "outcome: {outcome:?}"
        );
    }

    #[test]
    fn false_invariant_fails_the_base_case() {
        let (mut n, _, _) = mod10_counter();
        let c = n.find_register("c").unwrap();
        let c_sig = n.registers()[c.index()].signal;
        let five = n.lit(5, 4);
        let never_five = n.ne(c_sig, five);
        n.output("never_five", never_five);
        let prover = InductionProver::new(UnrollOptions::default());
        let outcome = prover.prove(&n, never_five, &[], 6);
        assert!(
            matches!(
                outcome,
                InductionOutcome::BaseCaseFailed {
                    failing_cycle: 5,
                    ..
                }
            ),
            "outcome: {outcome:?}"
        );
    }

    #[test]
    fn constraints_restrict_the_step() {
        // A register that copies its input; the invariant "r == 0" is only
        // inductive under the constraint "input == 0".
        let mut n = Netlist::new("copy");
        let input = n.input("in", 4);
        let r = n.register_init("r", 4, BitVec::zero(4));
        n.set_next(r, input);
        let zero = n.lit(0, 4);
        let r_zero = n.eq(r.value(), zero);
        let in_zero = n.eq(input, zero);
        n.output("r_zero", r_zero);
        n.output("in_zero", in_zero);

        let prover = InductionProver::new(UnrollOptions::default());
        assert!(matches!(
            prover.prove(&n, r_zero, &[], 1),
            InductionOutcome::StepFailed { .. }
        ));
        assert!(prover.prove(&n, r_zero, &[in_zero], 1).is_proven());
    }
}
