//! # `rtl` — word-level register-transfer-level intermediate representation
//!
//! This crate provides the hardware representation shared by the whole UPEC
//! reproduction workspace. Designs are *constructed* (rather than parsed from
//! Verilog, which has no mature Rust ecosystem) as word-level netlists: DAGs
//! of bit-vector expressions plus registers, primary inputs and outputs.
//!
//! The representation is deliberately close to what a synthesizable RTL
//! description elaborates into:
//!
//! * [`BitVec`] — constant bit-vector values (1..=64 bits, modular
//!   arithmetic),
//! * [`Node`] — word-level operators (bitwise logic, add/sub, comparisons,
//!   shifts, mux, slice, concat),
//! * [`Netlist`] — the design container: expression DAG, registers with
//!   next-state functions and optional reset values, ports, hierarchical
//!   names and free-form signal tags.
//!
//! Two engines consume the representation:
//!
//! * the [`sim`](https://docs.rs/sim) crate evaluates it cycle-accurately at
//!   the word level, and
//! * the [`bmc`](https://docs.rs/bmc) crate bit-blasts it to CNF for the
//!   SAT-based interval property checking (IPC) used by UPEC.
//!
//! Registers declared *without* an initial value start in a symbolic state —
//! this is the "any-state proof" foundation of interval property checking
//! described in Sec. V of the UPEC paper.
//!
//! # Example
//!
//! ```
//! use rtl::{Netlist, NetlistStats, BitVec};
//!
//! // A 2-bit saturating counter.
//! let mut n = Netlist::new("saturating_counter");
//! let step = n.input("step", 1);
//! let count = n.register_init("count", 2, BitVec::zero(2));
//! let max = n.lit(0b11, 2);
//! let at_max = n.eq(count.value(), max);
//! let one = n.lit(1, 2);
//! let incremented = n.add(count.value(), one);
//! let held = n.mux(at_max, count.value(), incremented);
//! let next = n.mux(step, held, count.value());
//! n.set_next(count, next);
//! n.output("count", count.value());
//!
//! n.validate()?;
//! assert_eq!(NetlistStats::of(&n).registers, 1);
//! # Ok::<(), rtl::RtlError>(())
//! ```

#![warn(missing_docs)]

mod coi;
mod error;
mod netlist;
mod node;
mod rng;
mod stats;
mod value;

pub mod dot;

pub use coi::{Coi, CoiStats};
pub use error::RtlError;
pub use netlist::{Netlist, OutputPort, RegisterHandle, RegisterInfo};
pub use node::{BinaryOp, Node, RegisterId, SignalId, UnaryOp};
pub use rng::SplitMix64;
pub use stats::NetlistStats;
pub use value::{BitVec, MAX_WIDTH};
