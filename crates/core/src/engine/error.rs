//! Typed errors of the engine query path.
//!
//! The session's original API treated every misuse as a panic; the `try_`
//! variants ([`IncrementalSession::try_with_options`],
//! [`IncrementalSession::try_check_bound`],
//! [`IncrementalSession::check_bound_certified`]) return these instead, so
//! embedders — the scheduler, the bench binaries, fuzz drivers — can react to
//! a malformed query without unwinding.
//!
//! [`IncrementalSession::try_with_options`]: crate::engine::IncrementalSession::try_with_options
//! [`IncrementalSession::try_check_bound`]: crate::engine::IncrementalSession::try_check_bound
//! [`IncrementalSession::check_bound_certified`]: crate::engine::IncrementalSession::check_bound_certified

use crate::UpecStats;
use std::fmt;

/// An error raised by the engine query path.
#[derive(Debug, Clone)]
pub enum EngineError {
    /// A model constraint (or an obligation signal) could not be encoded on
    /// the unrolled miter.
    MalformedConstraint {
        /// Label of the offending constraint or signal.
        label: String,
        /// The unrolling's rejection, rendered.
        reason: String,
    },
    /// The commitment names a register pair the model does not have.
    UnknownRegister {
        /// The unmatched commitment entry.
        name: String,
    },
    /// The commitment restricts the obligation to nothing — a vacuous query
    /// that would "prove" any design secure.
    EmptyCommitment,
    /// A certified query was issued on a session opened without
    /// [`UpecOptions::with_certificates`](crate::UpecOptions::with_certificates)
    /// (proven bounds need the proof log recording from the first clause on).
    CertificationUnavailable,
    /// The query stopped without a verdict — budget exhausted or cancelled —
    /// so there is nothing to certify. The effort spent is reported; the
    /// session stays valid and the query may be retried with a larger
    /// budget.
    UncertifiableVerdict {
        /// Window length of the undecided query.
        window: usize,
        /// Effort counters of the undecided query.
        stats: UpecStats,
        /// Why the solver stopped (see [`sat::StopCause`]).
        stop: Option<sat::StopCause>,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::MalformedConstraint { label, reason } => {
                write!(f, "constraint `{label}` malformed: {reason}")
            }
            EngineError::UnknownRegister { name } => {
                write!(f, "commitment refers to unknown register `{name}`")
            }
            EngineError::EmptyCommitment => write!(f, "commitment must not be empty"),
            EngineError::CertificationUnavailable => write!(
                f,
                "certified queries need a session opened with UpecOptions::with_certificates()"
            ),
            EngineError::UncertifiableVerdict { window, stop, .. } => write!(
                f,
                "window {window} stopped without a verdict ({}): nothing to certify",
                match stop {
                    Some(sat::StopCause::BudgetExhausted) => "budget exhausted",
                    Some(sat::StopCause::Cancelled) => "cancelled",
                    Some(sat::StopCause::ConflictLimit) => "conflict limit",
                    None => "unknown cause",
                }
            ),
        }
    }
}

impl std::error::Error for EngineError {}
