//! Incremental-safe CNF simplification.
//!
//! This module adds a SatELite-style preprocessing pipeline to the
//! [`Solver`]: top-level clause cleanup, failed-literal probing, subsumption
//! with self-subsuming resolution, and bounded variable elimination (BVE).
//! Unlike a one-shot preprocessor it is designed to run *between* the solve
//! calls of an incremental session — the unroller in the `bmc` crate invokes
//! it after every bound extension — which imposes one extra contract:
//!
//! # The frozen-variable contract
//!
//! Variable elimination removes every clause containing an eliminated
//! variable and replaces them by their resolvents. That is only sound if the
//! variable never appears again: not in a later [`Solver::add_clause`], not
//! in the assumptions of a later [`Solver::solve_with_assumptions`], and not
//! in a model read that must reflect the variable's defining clauses.
//! Callers therefore [`Solver::freeze_var`] (or [`Solver::freeze`]) every
//! variable that can outlive the current clause set — in the UPEC unrolling
//! these are the frame-boundary slot literals, activation literals and
//! trace-extraction variables — and the simplifier refuses to eliminate
//! frozen variables. Adding a clause or assuming a literal over an
//! eliminated variable panics: it is a programming error, not a recoverable
//! condition.
//!
//! Satisfying assignments are *extended* back over eliminated variables: the
//! clauses removed by each elimination are kept on an extension stack and
//! replayed in reverse elimination order after every SAT answer, so
//! [`crate::Model`] values remain correct for every variable the caller ever
//! saw.
//!
//! # Examples
//!
//! ```
//! use sat::{Solver, SimplifyConfig};
//!
//! let mut solver = Solver::new();
//! let x = solver.new_var().positive();
//! let t = solver.new_var().positive(); // Tseitin-style internal variable
//! let y = solver.new_var().positive();
//! // t <-> (x AND y), plus an obligation on t.
//! solver.add_clause([!t, x]);
//! solver.add_clause([!t, y]);
//! solver.add_clause([t, !x, !y]);
//! solver.add_clause([t]);
//! // x and y are observed later; t is internal and may be eliminated.
//! solver.freeze(x);
//! solver.freeze(y);
//! assert!(solver.simplify_with(&SimplifyConfig::default()));
//! let model = solver.solve();
//! let m = model.model().expect("sat");
//! assert!(m.lit_is_true(x) && m.lit_is_true(y));
//! assert!(m.lit_is_true(t)); // extension reconstructs eliminated variables
//! ```

use crate::solver::Reason;
use crate::{LBool, Lit, Solver, Var};

/// Tuning knobs of the simplification pipeline.
///
/// The defaults are chosen for the Tseitin-encoded unrollings produced by
/// the `bmc` crate: clauses are short, internal gate variables occur a
/// handful of times, and simplification runs once per bound extension.
///
/// # Examples
///
/// ```
/// use sat::SimplifyConfig;
///
/// let config = SimplifyConfig {
///     failed_literals: false, // skip probing for a cheaper pass
///     ..SimplifyConfig::default()
/// };
/// assert!(config.var_elim && config.subsumption);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimplifyConfig {
    /// Run bounded variable elimination.
    pub var_elim: bool,
    /// Run subsumption and self-subsuming resolution.
    pub subsumption: bool,
    /// Run failed-literal probing at the top level.
    pub failed_literals: bool,
    /// A variable is an elimination candidate only if each polarity occurs
    /// in at most this many clauses.
    pub elim_occurrence_limit: usize,
    /// Allowed growth of the clause count per eliminated variable
    /// (0 = classic "never grow" rule).
    pub elim_grow: usize,
    /// Skip eliminating a variable if any resolvent would exceed this many
    /// literals.
    pub resolvent_size_limit: usize,
    /// Clauses longer than this are not tried as subsumers.
    pub subsumption_size_limit: usize,
    /// Propagation budget for failed-literal probing, per `simplify` call.
    pub failed_literal_propagations: u64,
}

impl Default for SimplifyConfig {
    fn default() -> Self {
        Self {
            var_elim: true,
            subsumption: true,
            failed_literals: true,
            elim_occurrence_limit: 10,
            elim_grow: 0,
            resolvent_size_limit: 20,
            subsumption_size_limit: 20,
            failed_literal_propagations: 100_000,
        }
    }
}

/// Counters accumulated over every [`Solver::simplify`] call of a solver's
/// lifetime.
///
/// # Examples
///
/// ```
/// use sat::Solver;
///
/// let mut solver = Solver::new();
/// let a = solver.new_var().positive();
/// solver.add_clause([a]);
/// assert!(solver.simplify());
/// assert_eq!(solver.simplify_stats().rounds, 1);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimplifyStats {
    /// Number of completed `simplify` calls.
    pub rounds: u64,
    /// Clauses removed because they were satisfied at the top level.
    pub removed_clauses: u64,
    /// Literals removed from clauses (top-level falsified literals plus
    /// self-subsuming resolution).
    pub strengthened_lits: u64,
    /// Clauses removed by subsumption.
    pub subsumed_clauses: u64,
    /// Variables removed by bounded variable elimination.
    pub eliminated_vars: u64,
    /// Resolvent clauses added by variable elimination.
    pub resolvent_clauses: u64,
    /// Top-level units learned by failed-literal probing.
    pub failed_literals: u64,
    /// Learned clauses dropped because they mentioned an eliminated variable.
    pub dropped_learnts: u64,
}

impl SimplifyStats {
    /// Counter difference `self - earlier`, for attributing the work of a
    /// single `simplify` call. All fields are monotonically increasing
    /// counters; subtraction saturates so a mismatched snapshot cannot
    /// underflow. Mirrors [`crate::SolverStats::delta_since`].
    pub fn delta_since(&self, earlier: &SimplifyStats) -> SimplifyStats {
        SimplifyStats {
            rounds: self.rounds.saturating_sub(earlier.rounds),
            removed_clauses: self.removed_clauses.saturating_sub(earlier.removed_clauses),
            strengthened_lits: self
                .strengthened_lits
                .saturating_sub(earlier.strengthened_lits),
            subsumed_clauses: self
                .subsumed_clauses
                .saturating_sub(earlier.subsumed_clauses),
            eliminated_vars: self.eliminated_vars.saturating_sub(earlier.eliminated_vars),
            resolvent_clauses: self
                .resolvent_clauses
                .saturating_sub(earlier.resolvent_clauses),
            failed_literals: self.failed_literals.saturating_sub(earlier.failed_literals),
            dropped_learnts: self.dropped_learnts.saturating_sub(earlier.dropped_learnts),
        }
    }
}

/// One eliminated variable together with the clauses its elimination
/// removed, kept for model extension.
#[derive(Debug, Clone)]
pub(crate) struct ExtensionEntry {
    pub(crate) var: Var,
    pub(crate) clauses: Vec<Vec<Lit>>,
}

/// A clause lifted out of the solver's arena while the pipeline transforms
/// the database.
#[derive(Debug)]
struct SimpClause {
    lits: Vec<Lit>,
    learnt: bool,
    activity: f64,
    lbd: u32,
    deleted: bool,
    /// Clause-sharing ceiling (see [`crate::solver::SHARE_NONE`]); every
    /// transformation that derives a clause from several parents takes the
    /// maximum of the parents' ceilings.
    share: u32,
    /// Whether the clause already left the solver through
    /// [`Solver::drain_exportable`] (survives the rebuild so a clause is
    /// never exported twice).
    exported: bool,
}

/// Outcome of a subsumption check between a potential subsumer `c` and a
/// victim `d`.
enum SubsumeResult {
    /// `c ⊆ d`: `d` is redundant.
    Subsume,
    /// `c` subsumes `d` except for one flipped literal: that literal (as it
    /// appears in `d`) can be removed from `d`.
    Strengthen(Lit),
    /// Neither.
    None,
}

impl Solver {
    /// Marks a variable as *frozen*: the simplifier will never eliminate it,
    /// so it stays legal in clauses, assumptions and model reads added after
    /// a [`Solver::simplify`] call.
    ///
    /// # Panics
    ///
    /// Panics if the variable has already been eliminated — freezing must
    /// happen before the simplification that would remove the variable.
    ///
    /// # Examples
    ///
    /// ```
    /// use sat::Solver;
    ///
    /// let mut solver = Solver::new();
    /// let v = solver.new_var();
    /// solver.freeze_var(v);
    /// assert!(solver.is_frozen(v));
    /// ```
    pub fn freeze_var(&mut self, var: Var) {
        assert!(
            !self.eliminated[var.index()],
            "variable {var} is already eliminated and cannot be frozen"
        );
        self.frozen[var.index()] = true;
    }

    /// [`Solver::freeze_var`] for a literal's variable.
    ///
    /// # Examples
    ///
    /// ```
    /// use sat::Solver;
    ///
    /// let mut solver = Solver::new();
    /// let l = solver.new_var().positive();
    /// solver.freeze(l);
    /// assert!(solver.is_frozen(l.var()));
    /// ```
    pub fn freeze(&mut self, lit: Lit) {
        self.freeze_var(lit.var());
    }

    /// Whether a variable is frozen (exempt from elimination).
    pub fn is_frozen(&self, var: Var) -> bool {
        self.frozen[var.index()]
    }

    /// Whether a variable has been removed by bounded variable elimination.
    ///
    /// Eliminated variables must not appear in new clauses or assumptions;
    /// their model values are reconstructed automatically.
    pub fn is_eliminated(&self, var: Var) -> bool {
        self.eliminated[var.index()]
    }

    /// Simplification counters accumulated so far.
    pub fn simplify_stats(&self) -> SimplifyStats {
        self.simp_stats
    }

    /// Runs the simplification pipeline with the default configuration.
    ///
    /// Returns `false` if simplification proved the formula unsatisfiable
    /// (the solver then answers [`crate::SatResult::Unsat`] forever), `true`
    /// otherwise.
    ///
    /// # Examples
    ///
    /// ```
    /// use sat::Solver;
    ///
    /// let mut solver = Solver::new();
    /// let a = solver.new_var().positive();
    /// let b = solver.new_var().positive();
    /// solver.freeze(a);
    /// solver.add_clause([a, b]);
    /// solver.add_clause([a, !b]);
    /// assert!(solver.simplify()); // still satisfiable
    /// assert!(solver.solve().is_sat());
    /// ```
    pub fn simplify(&mut self) -> bool {
        self.simplify_with(&SimplifyConfig::default())
    }

    /// Runs the simplification pipeline with an explicit configuration. See
    /// [`Solver::simplify`].
    ///
    /// # Panics
    ///
    /// Panics if called while the solver is mid-search (decision level
    /// above 0); `simplify` belongs between `solve` calls.
    pub fn simplify_with(&mut self, config: &SimplifyConfig) -> bool {
        assert_eq!(
            self.decision_level(),
            0,
            "simplify may only run between solve calls, at decision level 0"
        );
        if !self.ok {
            return false;
        }
        if self.propagate().is_some() {
            self.ok = false;
            return false;
        }
        self.simp_stats.rounds += 1;
        let stats_before = self.simp_stats;
        let mut span = obs::span("sat.simplify");

        if config.failed_literals {
            let _probe = obs::span("simplify.probe");
            if !self.probe_failed_literals(config) {
                self.ok = false;
                return false;
            }
        }

        let mut clauses = {
            let _extract = obs::span("simplify.extract");
            let mut clauses = self.extract_clauses();
            if !self.clean_until_fixpoint(&mut clauses) {
                self.ok = false;
                return false;
            }
            clauses
        };
        if config.subsumption {
            let _subsume = obs::span("simplify.subsume");
            if !self.subsume_pass(&mut clauses, config) {
                self.ok = false;
                return false;
            }
            if !self.clean_until_fixpoint(&mut clauses) {
                self.ok = false;
                return false;
            }
        }
        if config.var_elim {
            let _elim = obs::span("simplify.elim");
            if !self.eliminate_pass(&mut clauses, config) {
                self.ok = false;
                return false;
            }
            if !self.clean_until_fixpoint(&mut clauses) {
                self.ok = false;
                return false;
            }
        }
        {
            let _rebuild = obs::span("simplify.rebuild");
            self.rebuild(clauses);
        }
        if span.id().is_some() {
            let d = self.simp_stats.delta_since(&stats_before);
            span.attr_u64("removed_clauses", d.removed_clauses);
            span.attr_u64("strengthened_lits", d.strengthened_lits);
            span.attr_u64("subsumed_clauses", d.subsumed_clauses);
            span.attr_u64("eliminated_vars", d.eliminated_vars);
            span.attr_u64("failed_literals", d.failed_literals);
        }
        true
    }

    /// Probes unassigned variables: if assuming a literal leads to a
    /// conflict by propagation alone, its negation is a top-level fact.
    ///
    /// Probing assigns (and retracts) large parts of the formula, which
    /// would overwrite the saved phases that give an incremental session its
    /// warm start; the phase array is therefore restored afterwards.
    fn probe_failed_literals(&mut self, config: &SimplifyConfig) -> bool {
        let saved_phases = self.phase.clone();
        let budget_start = self.stats.propagations;
        let mut consistent = true;
        'vars: for vi in 0..self.num_vars() {
            if self.stats.propagations.saturating_sub(budget_start)
                > config.failed_literal_propagations
            {
                break;
            }
            if self.assigns[vi] != LBool::Undef || self.eliminated[vi] {
                continue;
            }
            let var = Var::from_index(vi);
            for positive in [true, false] {
                if self.assigns[vi] != LBool::Undef {
                    break;
                }
                let probe = Lit::new(var, positive);
                // A literal with no watchers (long or binary) cannot
                // propagate, let alone fail.
                if self.watches[probe.code()].is_empty()
                    && self.bin_watches[probe.code()].is_empty()
                {
                    continue;
                }
                self.push_decision(probe);
                let conflict = self.propagate().is_some();
                self.backtrack_to(0);
                if conflict {
                    self.simp_stats.failed_literals += 1;
                    // Probe units are derived through a failed decision, not
                    // root propagation, so the checker needs them as lemmas.
                    // Their derivation may touch any clause in the database,
                    // so they are never shareable.
                    self.log_lemma(&[!probe]);
                    self.set_level0_share(!probe, crate::solver::SHARE_NONE);
                    self.enqueue(!probe, Reason::Decision);
                    if self.propagate().is_some() {
                        consistent = false;
                        break 'vars;
                    }
                }
            }
        }
        self.phase = saved_phases;
        consistent
    }

    /// Lifts every live clause out of the arena and the binary implication
    /// lists. The old database stays in place (propagation during the
    /// pipeline still uses it — every fact it derives is implied by the
    /// original formula, so this is sound) and is discarded wholesale by
    /// [`Solver::rebuild`].
    ///
    /// Each binary clause `(a ∨ b)` is stored in two implication lists (one
    /// per direction) and extracted exactly once, from the direction whose
    /// first literal has the smaller code. Learned binaries are promoted to
    /// problem clauses here — they are implied facts, retained permanently,
    /// and letting them join subsumption/elimination only strengthens both.
    fn extract_clauses(&self) -> Vec<SimpClause> {
        let mut clauses: Vec<SimpClause> = self
            .headers
            .iter()
            .filter(|h| !h.deleted)
            .map(|h| SimpClause {
                lits: self.clause_lits[h.start as usize..(h.start + h.len) as usize].to_vec(),
                learnt: h.learnt,
                activity: h.activity,
                lbd: h.lbd,
                deleted: false,
                share: h.share,
                exported: h.exported,
            })
            .collect();
        for code in 0..self.bin_watches.len() {
            // The entry `q` at code `p` encodes the clause `(!p ∨ q)`.
            let a = !Lit::from_code(code);
            for &b in &self.bin_watches[code] {
                if a.code() < b.code() {
                    clauses.push(SimpClause {
                        lits: vec![a, b],
                        learnt: false,
                        activity: 0.0,
                        lbd: 0,
                        deleted: false,
                        share: self.bin_share_of(a, b),
                        exported: true, // learned binaries export at learn time
                    });
                }
            }
        }
        clauses
    }

    /// Removes satisfied clauses, strips falsified literals and propagates
    /// any units this uncovers, until nothing changes. Returns `false` on
    /// unsatisfiability.
    fn clean_until_fixpoint(&mut self, clauses: &mut [SimpClause]) -> bool {
        loop {
            if self.propagate().is_some() {
                return false;
            }
            let trail_before = self.trail.len();
            for c in clauses.iter_mut() {
                if c.deleted {
                    continue;
                }
                let mut satisfied = false;
                let mut i = 0;
                while i < c.lits.len() {
                    match self.value_lit(c.lits[i]) {
                        LBool::True => {
                            satisfied = true;
                            break;
                        }
                        LBool::False => {
                            // Stripping a root-false literal resolves with
                            // the root fact; its ceiling joins the clause's.
                            c.share = c.share.max(self.level0_share[c.lits[i].var().index()]);
                            c.lits.swap_remove(i);
                            self.simp_stats.strengthened_lits += 1;
                        }
                        LBool::Undef => i += 1,
                    }
                }
                if satisfied {
                    // Falsified-literal strips above are not logged (the
                    // stripped literals are root-false for the checker too);
                    // satisfied-clause removals are advisory deletions.
                    self.log_delete_slice(&c.lits);
                    c.deleted = true;
                    self.simp_stats.removed_clauses += 1;
                    continue;
                }
                match c.lits.len() {
                    0 => return false,
                    1 => {
                        // Learned units are implied facts too, so both kinds
                        // may be promoted to the trail.
                        if self.value_lit(c.lits[0]) == LBool::Undef {
                            self.set_level0_share(c.lits[0], c.share);
                            self.enqueue(c.lits[0], Reason::Decision);
                        }
                        c.deleted = true;
                    }
                    _ => {}
                }
            }
            if self.trail.len() == trail_before {
                return true;
            }
        }
    }

    /// Subsumption and self-subsuming resolution over the problem clauses.
    /// Returns `false` on unsatisfiability (a clause strengthened down to a
    /// falsified unit).
    fn subsume_pass(&mut self, clauses: &mut [SimpClause], config: &SimplifyConfig) -> bool {
        let signature = |lits: &[Lit]| -> u64 {
            lits.iter()
                .fold(0u64, |sig, l| sig | 1u64 << (l.var().index() & 63))
        };
        let mut sigs: Vec<u64> = clauses.iter().map(|c| signature(&c.lits)).collect();
        let mut occur: Vec<Vec<u32>> = vec![Vec::new(); 2 * self.num_vars()];
        for (i, c) in clauses.iter().enumerate() {
            if c.deleted || c.learnt {
                continue;
            }
            for &l in &c.lits {
                occur[l.code()].push(i as u32);
            }
        }
        let mut order: Vec<u32> = (0..clauses.len() as u32)
            .filter(|&i| {
                let c = &clauses[i as usize];
                !c.deleted && !c.learnt && c.lits.len() <= config.subsumption_size_limit
            })
            .collect();
        order.sort_by_key(|&i| clauses[i as usize].lits.len());

        for &ci in &order {
            if clauses[ci as usize].deleted {
                continue;
            }
            // Scan the occurrence lists of the rarest literal — both
            // polarities, so self-subsumption on that literal is found too.
            let Some(&best) = clauses[ci as usize]
                .lits
                .iter()
                .min_by_key(|l| occur[l.code()].len())
            else {
                continue;
            };
            for scan in [best, !best] {
                // The occurrence lists are fixed here (they only grow in
                // `eliminate_pass`); stale entries are filtered below.
                for &candidate in &occur[scan.code()] {
                    let di = candidate as usize;
                    if di == ci as usize || clauses[di].deleted {
                        continue;
                    }
                    if clauses[di].lits.len() < clauses[ci as usize].lits.len() {
                        continue;
                    }
                    // Signature prefilter: every variable of c must appear
                    // in d.
                    if sigs[ci as usize] & !sigs[di] != 0 {
                        continue;
                    }
                    // Occurrence entries go stale when a clause is
                    // strengthened; verify membership.
                    if !clauses[di].lits.contains(&scan) {
                        continue;
                    }
                    match subsume_check(&clauses[ci as usize].lits, &clauses[di].lits) {
                        SubsumeResult::Subsume => {
                            self.log_delete_slice(&clauses[di].lits);
                            clauses[di].deleted = true;
                            self.simp_stats.subsumed_clauses += 1;
                        }
                        SubsumeResult::Strengthen(flipped) => {
                            // Self-subsuming resolution of d with c: d's new
                            // form depends on both parents' ceilings.
                            let subsumer_share = clauses[ci as usize].share;
                            clauses[di].share = clauses[di].share.max(subsumer_share);
                            let pos = clauses[di]
                                .lits
                                .iter()
                                .position(|&l| l == flipped)
                                .expect("strengthened literal is in the victim");
                            let old_form: Vec<Lit> = if self.proof.is_some() {
                                clauses[di].lits.clone()
                            } else {
                                Vec::new()
                            };
                            clauses[di].lits.swap_remove(pos);
                            sigs[di] = signature(&clauses[di].lits);
                            if self.proof.is_some() {
                                // The strengthened clause is RUP through the
                                // subsumer and the (still live) old form; log
                                // the addition before the deletion.
                                let new_form = clauses[di].lits.clone();
                                self.log_lemma(&new_form);
                                self.log_delete_slice(&old_form);
                            }
                            self.simp_stats.strengthened_lits += 1;
                            if clauses[di].lits.len() == 1 {
                                let unit = clauses[di].lits[0];
                                let unit_share = clauses[di].share;
                                clauses[di].deleted = true;
                                match self.value_lit(unit) {
                                    LBool::False => return false,
                                    LBool::Undef => {
                                        self.set_level0_share(unit, unit_share);
                                        self.enqueue(unit, Reason::Decision);
                                        if self.propagate().is_some() {
                                            return false;
                                        }
                                    }
                                    LBool::True => {}
                                }
                            }
                        }
                        SubsumeResult::None => {}
                    }
                }
            }
        }
        true
    }

    /// Bounded variable elimination. Returns `false` on unsatisfiability.
    fn eliminate_pass(&mut self, clauses: &mut Vec<SimpClause>, config: &SimplifyConfig) -> bool {
        let mut occur: Vec<Vec<u32>> = vec![Vec::new(); 2 * self.num_vars()];
        for (i, c) in clauses.iter().enumerate() {
            if c.deleted || c.learnt {
                continue;
            }
            for &l in &c.lits {
                occur[l.code()].push(i as u32);
            }
        }
        // Cheapest candidates first: fewest occurrences total.
        let mut candidates: Vec<(usize, Var)> = (0..self.num_vars())
            .filter(|&vi| {
                !self.frozen[vi] && !self.eliminated[vi] && self.assigns[vi] == LBool::Undef
            })
            .map(|vi| {
                let v = Var::from_index(vi);
                let total = occur[v.positive().code()].len() + occur[v.negative().code()].len();
                (total, v)
            })
            .filter(|&(total, _)| total > 0)
            .collect();
        candidates.sort_unstable_by_key(|&(total, v)| (total, v));

        for (_, v) in candidates {
            if self.assigns[v.index()] != LBool::Undef {
                continue; // assigned meanwhile by a unit resolvent
            }
            let live = |occ: &[u32], clauses: &[SimpClause]| -> Vec<u32> {
                occ.iter()
                    .copied()
                    .filter(|&i| !clauses[i as usize].deleted)
                    .collect()
            };
            let pos = live(&occur[v.positive().code()], clauses);
            let neg = live(&occur[v.negative().code()], clauses);
            if pos.is_empty() && neg.is_empty() {
                continue;
            }
            if pos.len() > config.elim_occurrence_limit || neg.len() > config.elim_occurrence_limit
            {
                continue;
            }
            // Gather the non-tautological resolvents, giving up as soon as
            // the elimination would grow the clause set beyond the budget.
            let budget = pos.len() + neg.len() + config.elim_grow;
            let mut resolvents: Vec<(Vec<Lit>, u32)> = Vec::new();
            let mut too_costly = false;
            'resolution: for &pi in &pos {
                for &ni in &neg {
                    if let Some(r) =
                        resolve(&clauses[pi as usize].lits, &clauses[ni as usize].lits, v)
                    {
                        if r.len() > config.resolvent_size_limit {
                            too_costly = true;
                            break 'resolution;
                        }
                        let share = clauses[pi as usize].share.max(clauses[ni as usize].share);
                        resolvents.push((r, share));
                        if resolvents.len() > budget {
                            too_costly = true;
                            break 'resolution;
                        }
                    }
                }
            }
            if too_costly {
                continue;
            }

            if self.proof.is_some() {
                // Every resolvent is RUP through its two (still live) parent
                // clauses, so resolvent additions must precede the parent
                // deletions in the log.
                for (r, _) in &resolvents {
                    self.log_lemma(r);
                }
                for &i in pos.iter().chain(&neg) {
                    let form: Vec<Lit> = clauses[i as usize].lits.clone();
                    self.log_delete_slice(&form);
                }
            }

            // Commit: remove the variable's clauses (keeping them for model
            // extension), add the resolvents.
            let mut removed = Vec::with_capacity(pos.len() + neg.len());
            for &i in pos.iter().chain(&neg) {
                let c = &mut clauses[i as usize];
                c.deleted = true;
                removed.push(c.lits.clone());
            }
            self.extension.push(ExtensionEntry {
                var: v,
                clauses: removed,
            });
            self.eliminated[v.index()] = true;
            self.simp_stats.eliminated_vars += 1;
            for (r, share) in resolvents {
                match r.len() {
                    0 => return false,
                    1 => match self.value_lit(r[0]) {
                        LBool::False => return false,
                        LBool::Undef => {
                            self.set_level0_share(r[0], share);
                            self.enqueue(r[0], Reason::Decision);
                            if self.propagate().is_some() {
                                return false;
                            }
                        }
                        LBool::True => {}
                    },
                    _ => {
                        let idx = clauses.len() as u32;
                        for &l in &r {
                            occur[l.code()].push(idx);
                        }
                        clauses.push(SimpClause {
                            lits: r,
                            learnt: false,
                            activity: 0.0,
                            lbd: 0,
                            deleted: false,
                            share,
                            exported: false,
                        });
                        self.simp_stats.resolvent_clauses += 1;
                    }
                }
            }
        }
        true
    }

    /// Replaces the solver's clause database with the transformed clause
    /// set, rebuilding every watch list and binary implication list (this
    /// also compacts the arena holes left by deleted clauses).
    fn rebuild(&mut self, clauses: Vec<SimpClause>) {
        self.headers.clear();
        self.clause_lits.clear();
        self.reset_waste();
        for w in &mut self.watches {
            w.clear();
        }
        for w in &mut self.bin_watches {
            w.clear();
        }
        self.clear_bin_share();
        self.num_bin_clauses = 0;
        self.num_learnts = 0;
        // All trail entries are top-level facts now; their reasons pointed
        // into the old database. Unassigned variables already carry no
        // clause reference (`backtrack_to` scrubs on unassignment), so this
        // trail walk leaves the whole solver free of old-arena indices.
        for i in 0..self.trail.len() {
            let vi = self.trail[i].var().index();
            self.var_data[vi].reason = Reason::Decision;
        }
        #[cfg(debug_assertions)]
        for (vi, d) in self.var_data.iter().enumerate() {
            if self.assigns[vi] == LBool::Undef {
                debug_assert!(
                    !matches!(d.reason, Reason::Long(_)),
                    "unassigned v{vi} carries a clause-index reason into rebuild"
                );
            }
        }
        for c in clauses {
            if c.deleted {
                continue;
            }
            if c.learnt && c.lits.iter().any(|l| self.eliminated[l.var().index()]) {
                self.log_delete_slice(&c.lits);
                self.simp_stats.dropped_learnts += 1;
                continue;
            }
            debug_assert!(
                c.lits.len() >= 2,
                "cleaned clauses are at least binary (units live on the trail)"
            );
            debug_assert!(
                c.learnt || c.lits.iter().all(|l| !self.eliminated[l.var().index()]),
                "problem clauses never mention eliminated variables"
            );
            if c.lits.len() == 2 {
                // Binary clauses (learned ones included) live in the
                // implication graph from here on.
                self.attach_binary_shared(c.lits[0], c.lits[1], c.share);
                continue;
            }
            let activity = c.activity;
            let lbd = c.lbd;
            let learnt = c.learnt;
            let share = c.share;
            let exported = c.exported;
            let cref = self.attach_clause_shared(c.lits, learnt, share);
            self.headers[cref as usize].activity = activity;
            self.headers[cref as usize].lbd = lbd;
            self.headers[cref as usize].exported = exported;
        }
        self.stats.learnt_clauses = self.num_learnts as u64;
        // Every remaining clause was cleaned against the final trail, so
        // nothing is pending propagation.
        self.qhead = self.trail.len();
        self.qhead_bin = self.trail.len();
    }

    /// Completes a model over eliminated variables by replaying the
    /// extension stack in reverse elimination order. Each stored clause not
    /// already satisfied by the other literals forces its variable; the
    /// resolvents kept in the formula guarantee no two clauses force
    /// opposite values.
    pub(crate) fn extend_model(&self, values: &mut [bool]) {
        for entry in self.extension.iter().rev() {
            for clause in &entry.clauses {
                let mut satisfied = false;
                let mut own_lit = None;
                for &l in clause {
                    if l.var() == entry.var {
                        own_lit = Some(l);
                        continue;
                    }
                    if values[l.var().index()] == l.is_positive() {
                        satisfied = true;
                        break;
                    }
                }
                if !satisfied {
                    if let Some(l) = own_lit {
                        values[entry.var.index()] = l.is_positive();
                    }
                }
            }
        }
    }
}

/// Checks whether `c` subsumes `d`, possibly up to one flipped literal
/// (self-subsuming resolution).
fn subsume_check(c: &[Lit], d: &[Lit]) -> SubsumeResult {
    let mut flipped: Option<Lit> = None;
    for &lc in c {
        if d.contains(&lc) {
            continue;
        }
        if flipped.is_none() && d.contains(&!lc) {
            flipped = Some(!lc);
            continue;
        }
        return SubsumeResult::None;
    }
    match flipped {
        None => SubsumeResult::Subsume,
        Some(l) => SubsumeResult::Strengthen(l),
    }
}

/// Resolvent of `a` and `b` on variable `v`; `None` if it is a tautology.
fn resolve(a: &[Lit], b: &[Lit], v: Var) -> Option<Vec<Lit>> {
    let mut out: Vec<Lit> = Vec::with_capacity(a.len() + b.len() - 2);
    for &l in a {
        if l.var() != v {
            out.push(l);
        }
    }
    for &l in b {
        if l.var() == v {
            continue;
        }
        if out.contains(&!l) {
            return None;
        }
        if !out.contains(&l) {
            out.push(l);
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SatResult;

    fn lits(solver: &mut Solver, n: usize) -> Vec<Lit> {
        (0..n).map(|_| solver.new_var().positive()).collect()
    }

    #[test]
    fn subsume_check_matrix() {
        let mut s = Solver::new();
        let v = lits(&mut s, 3);
        assert!(matches!(
            subsume_check(&[v[0], v[1]], &[v[0], v[1], v[2]]),
            SubsumeResult::Subsume
        ));
        assert!(matches!(
            subsume_check(&[v[0], v[1]], &[v[0], !v[1], v[2]]),
            SubsumeResult::Strengthen(l) if l == !v[1]
        ));
        assert!(matches!(
            subsume_check(&[v[0], v[1]], &[v[0], v[2]]),
            SubsumeResult::None
        ));
        // Two flips are not self-subsumption.
        assert!(matches!(
            subsume_check(&[v[0], v[1]], &[!v[0], !v[1], v[2]]),
            SubsumeResult::None
        ));
    }

    #[test]
    fn resolve_drops_tautologies_and_duplicates() {
        let mut s = Solver::new();
        let v = lits(&mut s, 4);
        let a = [v[0].var().positive(), v[1], v[2]];
        let b = [v[0].var().negative(), v[1], v[3]];
        let r = resolve(&a, &b, v[0].var()).expect("not a tautology");
        assert_eq!(r, vec![v[1], v[2], v[3]]);
        let b_taut = [v[0].var().negative(), !v[1]];
        assert!(resolve(&a, &b_taut, v[0].var()).is_none());
    }

    #[test]
    fn elimination_preserves_satisfiability_and_extends_models() {
        // x <-> a AND b encoded via Tseitin; x is internal and gets
        // eliminated (all its resolvents are tautologies).
        let mut s = Solver::new();
        let v = lits(&mut s, 3);
        let (a, b, x) = (v[0], v[1], v[2]);
        s.freeze(a);
        s.freeze(b);
        s.add_clause([!x, a]);
        s.add_clause([!x, b]);
        s.add_clause([x, !a, !b]);
        assert!(s.simplify());
        assert!(s.is_eliminated(x.var()), "internal x must be eliminated");
        // Pin a and b after simplification; the extension must reconstruct
        // x = a AND b even though x's defining clauses are gone.
        s.add_clause([a]);
        s.add_clause([b]);
        match s.solve() {
            SatResult::Sat(m) => {
                assert!(m.lit_is_true(a));
                assert!(m.lit_is_true(b));
                assert!(m.lit_is_true(x), "extension must reconstruct x");
            }
            other => panic!("expected sat, got {other:?}"),
        }
    }

    #[test]
    fn frozen_variables_are_never_eliminated() {
        let mut s = Solver::new();
        let v = lits(&mut s, 3);
        for &l in &v {
            s.freeze(l);
        }
        s.add_clause([v[0], v[1]]);
        s.add_clause([!v[0], v[2]]);
        assert!(s.simplify());
        for &l in &v {
            assert!(!s.is_eliminated(l.var()));
        }
        // Clauses over frozen variables may still be added afterwards.
        s.add_clause([!v[1], !v[2]]);
        assert!(s.solve().is_sat());
    }

    #[test]
    fn simplify_detects_top_level_conflicts() {
        let mut s = Solver::new();
        let v = lits(&mut s, 2);
        s.add_clause([v[0], v[1]]);
        s.add_clause([v[0], !v[1]]);
        s.add_clause([!v[0], v[1]]);
        s.add_clause([!v[0], !v[1]]);
        // Failed-literal probing alone refutes this formula.
        assert!(!s.simplify());
        assert!(s.solve().is_unsat());
    }

    #[test]
    fn subsumption_removes_redundant_clauses() {
        let mut s = Solver::new();
        let v = lits(&mut s, 3);
        for &l in &v {
            s.freeze(l);
        }
        s.add_clause([v[0], v[1]]);
        s.add_clause([v[0], v[1], v[2]]); // subsumed
        s.add_clause([v[1], v[2]]);
        let before = s.num_clauses();
        let config = SimplifyConfig {
            var_elim: false,
            failed_literals: false,
            ..SimplifyConfig::default()
        };
        assert!(s.simplify_with(&config));
        assert!(s.num_clauses() < before);
        assert_eq!(s.simplify_stats().subsumed_clauses, 1);
        assert!(s.solve().is_sat());
    }

    #[test]
    fn self_subsumption_strengthens_clauses() {
        let mut s = Solver::new();
        let v = lits(&mut s, 3);
        for &l in &v {
            s.freeze(l);
        }
        // (a ∨ b) self-subsumes (a ∨ ¬b ∨ c) into (a ∨ c): resolving on b
        // yields a clause that subsumes the original.
        s.add_clause([v[0], v[1]]);
        s.add_clause([v[0], !v[1], v[2]]);
        let config = SimplifyConfig {
            var_elim: false,
            failed_literals: false,
            ..SimplifyConfig::default()
        };
        assert!(s.simplify_with(&config));
        assert!(s.simplify_stats().strengthened_lits >= 1);
        // ¬a forces b (first clause) and then c (strengthened clause).
        let r = s.solve_with_assumptions(&[!v[0]]);
        let m = r.model().expect("sat");
        assert!(m.lit_is_true(v[1]));
        assert!(m.lit_is_true(v[2]));
    }

    #[test]
    fn eliminated_variable_in_new_clause_panics() {
        let mut s = Solver::new();
        let v = lits(&mut s, 2);
        s.freeze(v[0]);
        s.add_clause([v[0], v[1]]);
        s.add_clause([v[0], !v[1]]);
        // Variable elimination alone: resolving the two clauses on v1 gives
        // the unit (v0), and v1 is eliminated.
        let config = SimplifyConfig {
            subsumption: false,
            failed_literals: false,
            ..SimplifyConfig::default()
        };
        assert!(s.simplify_with(&config));
        assert!(s.is_eliminated(v[1].var()));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut s = s.clone();
            s.add_clause([v[1]]);
        }));
        assert!(result.is_err(), "adding over an eliminated var must panic");
    }

    #[test]
    fn incremental_solving_after_simplify_stays_sound() {
        // Build a chain, simplify, then keep adding clauses over frozen
        // variables and check answers against a never-simplified twin.
        let mut simplified = Solver::new();
        let mut reference = Solver::new();
        let vs: Vec<Lit> = lits(&mut simplified, 6);
        let vr: Vec<Lit> = lits(&mut reference, 6);
        let clauses: Vec<Vec<usize>> = vec![vec![0, 1], vec![2, 3], vec![4, 5]];
        for c in &clauses {
            simplified.add_clause(c.iter().map(|&i| vs[i]));
            reference.add_clause(c.iter().map(|&i| vr[i]));
        }
        for &l in &vs {
            simplified.freeze(l);
        }
        assert!(simplified.simplify());
        // Add implications pinning everything down.
        for i in 0..5 {
            simplified.add_clause([!vs[i], vs[i + 1]]);
            reference.add_clause([!vr[i], vr[i + 1]]);
        }
        assert_eq!(
            simplified.solve_with_assumptions(&[!vs[5]]).is_sat(),
            reference.solve_with_assumptions(&[!vr[5]]).is_sat()
        );
        assert_eq!(simplified.solve().is_sat(), reference.solve().is_sat());
    }
}
