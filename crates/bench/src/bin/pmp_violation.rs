//! Reproduces the finding of paper Sec. VII-C: UPEC also uncovers the ISA
//! compliance violation in the physical-memory-protection (PMP) locking
//! logic — a "main channel" leak where the attacker gains direct access to
//! the secret.
//!
//! ```text
//! cargo run --release -p bench --bin pmp_violation
//! ```

use bench::{formal_config, secs};
use soc::SocVariant;
use upec::{SecretScenario, UpecChecker, UpecModel, UpecOptions};

fn main() {
    println!("Sec. VII-C — PMP TOR-lock violation\n");
    let checker = UpecChecker::new();
    for variant in [SocVariant::PmpLockBug, SocVariant::Secure] {
        let model = UpecModel::new(&formal_config(variant), SecretScenario::InCache);
        let mut verdict = "no L-alert up to the window bound".to_string();
        let mut runtime = std::time::Duration::ZERO;
        // The shortest leaking scenario (move the locked base, mret, load the
        // secret) spans about seven cycles; start the search there.
        for k in 7..=9 {
            let outcome = checker.check_architectural(&model, UpecOptions::window(k));
            runtime += outcome.stats().runtime;
            if let Some(alert) = outcome.alert() {
                verdict = format!(
                    "L-alert at window {k}: architectural registers {:?} receive secret-dependent values",
                    alert.architectural_differences
                );
                break;
            }
        }
        println!("{:>14}: {verdict} ({} total solver time)", variant.name(), secs(runtime));
    }
    println!("\nShape check vs the paper: the buggy lock implementation lets privileged code");
    println!("move the base of a locked region, after which the 'protected' secret leaks");
    println!("directly into an architectural register; the correct implementation does not.");
}
