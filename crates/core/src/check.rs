//! Checking the UPEC property on a bounded model and classifying
//! counterexamples into P-alerts and L-alerts (paper Defs. 6 and 7).

use crate::{StateClass, UpecModel};
use rtl::BitVec;
use std::collections::BTreeSet;
use std::time::Duration;

/// Options for a single UPEC property check.
#[derive(Debug, Clone, Copy)]
pub struct UpecOptions {
    /// Window length `k` (number of clock cycles after the symbolic starting
    /// time point).
    pub window: usize,
    /// Optional SAT conflict budget; exceeded budgets yield
    /// [`UpecOutcome::Unknown`] (the paper's "not feasible" windows).
    pub conflict_limit: Option<u64>,
    /// Deterministic per-query resource budget (conflicts / propagations /
    /// decisions; see [`sat::Budget`]). Unlike `conflict_limit` — which caps
    /// each solver episode — the budget covers each whole `check_bound`
    /// call; exhausted queries answer [`UpecOutcome::Unknown`] with the stop
    /// cause recorded in [`UpecStats::stop`], and the session stays
    /// resumable. Unlimited by default.
    pub budget: sat::Budget,
    /// Use the registers' reset values instead of a symbolic initial state
    /// (only used by the ablation study; real UPEC runs keep this `false`).
    pub from_reset_state: bool,
    /// Bypass the transition-relation compiler and encode the miter eagerly
    /// (the pre-compiler baseline; used by the `compile_stats` benchmark).
    pub eager_encoding: bool,
    /// Skip the solver's incremental-safe CNF simplification pipeline (the
    /// pre-simplifier baseline; used by the `solver_stats` benchmark and
    /// differential tests). Real proofs keep this `false`.
    pub no_simplify: bool,
    /// Conflict budget of the trial solve that gates CNF simplification:
    /// only queries that exhaust this cap pay for the pipeline (see
    /// [`bmc::UnrollOptions::simplify_trial_conflicts`]).
    pub simplify_trial_conflicts: u64,
    /// Record a DRAT proof log while solving so verdicts can be packaged as
    /// independently checkable certificates
    /// ([`IncrementalSession::check_bound_certified`](crate::engine::IncrementalSession::check_bound_certified)).
    pub certify: bool,
    /// Search-loop feature configuration of the SAT solver (EMA restarts,
    /// rephasing, chronological backtracking, vivification). Defaults to
    /// all-on; [`sat::SearchConfig::baseline`] restores the plain
    /// Luby/phase-saving loop for differential testing.
    pub search: sat::SearchConfig,
}

impl UpecOptions {
    /// Creates options for a window of `k` cycles.
    pub fn window(k: usize) -> Self {
        Self {
            window: k,
            conflict_limit: None,
            budget: sat::Budget::unlimited(),
            from_reset_state: false,
            eager_encoding: false,
            no_simplify: false,
            simplify_trial_conflicts: bmc::UnrollOptions::default().simplify_trial_conflicts,
            certify: false,
            search: sat::SearchConfig::default(),
        }
    }

    /// Sets the SAT conflict budget.
    pub fn with_conflict_limit(mut self, limit: Option<u64>) -> Self {
        self.conflict_limit = limit;
        self
    }

    /// Sets the deterministic per-query resource budget (see
    /// [`UpecOptions::budget`]).
    pub fn with_budget(mut self, budget: sat::Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Switches to reset-state bounded model checking (ablation only).
    pub fn from_reset(mut self) -> Self {
        self.from_reset_state = true;
        self
    }

    /// Switches to the eager (compiler-bypassing) encoding baseline.
    pub fn eager(mut self) -> Self {
        self.eager_encoding = true;
        self
    }

    /// Disables CNF simplification (the pre-simplifier solving baseline).
    pub fn no_simplify(mut self) -> Self {
        self.no_simplify = true;
        self
    }

    /// Sets the conflict budget of the trial solve that gates CNF
    /// simplification (`0` simplifies before any query hitting a conflict).
    pub fn with_simplify_trial(mut self, conflicts: u64) -> Self {
        self.simplify_trial_conflicts = conflicts;
        self
    }

    /// Enables DRAT proof logging so verdicts can be certified (see
    /// [`crate::VerdictCertificate`]).
    pub fn with_certificates(mut self) -> Self {
        self.certify = true;
        self
    }

    /// Sets the solver's search-loop feature configuration (builder style).
    pub fn with_search(mut self, search: sat::SearchConfig) -> Self {
        self.search = search;
        self
    }
}

/// Severity of a UPEC counterexample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertKind {
    /// Secret data reached a program-invisible microarchitectural register
    /// (necessary but not sufficient for a covert channel).
    PAlert,
    /// Secret data affects an architectural register or the timing of its
    /// updates: a covert channel exists.
    LAlert,
}

/// A counterexample to the UPEC property.
#[derive(Debug, Clone)]
pub struct Alert {
    /// P-alert or L-alert.
    pub kind: AlertKind,
    /// Window length at which the alert was found.
    pub window: usize,
    /// Names of the differing architectural registers (non-empty for
    /// L-alerts).
    pub architectural_differences: Vec<String>,
    /// Names of the differing microarchitectural registers.
    pub microarchitectural_differences: Vec<String>,
    /// Final-frame values `(name, instance 1, instance 2)` of the differing
    /// registers, for diagnosis.
    pub differing_values: Vec<(String, BitVec, BitVec)>,
}

impl Alert {
    /// All differing register names regardless of class.
    pub fn differing_registers(&self) -> Vec<String> {
        self.architectural_differences
            .iter()
            .chain(&self.microarchitectural_differences)
            .cloned()
            .collect()
    }
}

/// Statistics of one UPEC property check.
#[derive(Debug, Clone, Copy, Default)]
pub struct UpecStats {
    /// CNF variables in the unrolled miter.
    pub variables: usize,
    /// CNF clauses in the unrolled miter.
    pub clauses: usize,
    /// SAT conflicts spent.
    pub conflicts: u64,
    /// Unit propagations performed.
    pub propagations: u64,
    /// Solver restarts performed.
    pub restarts: u64,
    /// Compacting clause-arena garbage collections performed.
    pub arena_collections: u64,
    /// Wall-clock runtime of the check.
    pub runtime: Duration,
    /// Window length checked.
    pub window: usize,
    /// Why the query's final solver episode stopped early: `None` for
    /// decided queries, [`sat::StopCause::BudgetExhausted`] /
    /// [`sat::StopCause::Cancelled`] / [`sat::StopCause::ConflictLimit`]
    /// behind an [`UpecOutcome::Unknown`]. This is how budget exhaustion
    /// propagates honestly from the solver to scan verdicts and reports.
    pub stop: Option<sat::StopCause>,
}

/// Verdict of one UPEC property check.
#[derive(Debug, Clone)]
pub enum UpecOutcome {
    /// The property holds: no state in the commitment can differ at `t+k`.
    Proven(UpecStats),
    /// The property is violated.
    Violated(Alert, UpecStats),
    /// The solver gave up (conflict budget exhausted).
    Unknown(UpecStats),
}

impl UpecOutcome {
    /// Whether the property was proven.
    pub fn is_proven(&self) -> bool {
        matches!(self, UpecOutcome::Proven(_))
    }

    /// The alert, if the property was violated.
    pub fn alert(&self) -> Option<&Alert> {
        match self {
            UpecOutcome::Violated(alert, _) => Some(alert),
            _ => None,
        }
    }

    /// Statistics of the check.
    pub fn stats(&self) -> UpecStats {
        match self {
            UpecOutcome::Proven(s) | UpecOutcome::Violated(_, s) | UpecOutcome::Unknown(s) => *s,
        }
    }

    /// Short stable name of the verdict (`"proven"`, `"p-alert"`,
    /// `"l-alert"` or `"unknown"`), shared by the bench binaries and the
    /// differential tests.
    pub fn verdict_name(&self) -> &'static str {
        match self {
            UpecOutcome::Proven(_) => "proven",
            UpecOutcome::Unknown(_) => "unknown",
            UpecOutcome::Violated(alert, _) => match alert.kind {
                AlertKind::PAlert => "p-alert",
                AlertKind::LAlert => "l-alert",
            },
        }
    }
}

/// Checks the UPEC interval property (paper Fig. 4) on a [`UpecModel`].
#[derive(Debug, Clone, Default)]
pub struct UpecChecker;

impl UpecChecker {
    /// Creates a checker.
    pub fn new() -> Self {
        Self
    }

    /// Checks the property with the obligation restricted to `commitment`
    /// (register-pair names). Pairs outside the commitment may freely differ
    /// at `t+k` — this is how the methodology tolerates already-diagnosed
    /// P-alerts. Memory-class pairs are never part of the obligation.
    ///
    /// This is a one-shot convenience wrapper: it opens an
    /// [`IncrementalSession`](crate::engine::IncrementalSession) for a single
    /// query. Flows that re-solve the property — deepening the bound,
    /// shrinking the commitment, or sweeping scenarios — should hold on to a
    /// session (or use the [`UpecEngine`](crate::UpecEngine)) to reuse solver
    /// state across queries.
    ///
    /// # Panics
    ///
    /// Panics if a commitment name does not exist in the model.
    pub fn check(
        &self,
        model: &UpecModel,
        options: UpecOptions,
        commitment: &BTreeSet<String>,
    ) -> UpecOutcome {
        let mut session = crate::engine::IncrementalSession::with_options(model, options);
        session.check_bound(options.window, commitment)
    }

    /// Convenience: checks with the commitment set to *all* architectural and
    /// microarchitectural registers (the first iteration of the
    /// methodology).
    pub fn check_full(&self, model: &UpecModel, options: UpecOptions) -> UpecOutcome {
        let commitment = full_commitment(model);
        self.check(model, options, &commitment)
    }

    /// Convenience: checks with the commitment restricted to architectural
    /// registers only, so any counterexample is an L-alert.
    pub fn check_architectural(&self, model: &UpecModel, options: UpecOptions) -> UpecOutcome {
        let commitment: BTreeSet<String> = model
            .pairs_of_class(StateClass::Architectural)
            .map(|p| p.name.clone())
            .collect();
        self.check(model, options, &commitment)
    }
}

/// Frame-0 alias pairs expressing the `micro_soc_state1 = micro_soc_state2`
/// assumption structurally (not used for reset-state ablation runs, where the
/// initial values already coincide).
pub(crate) fn frame0_aliases(
    model: &UpecModel,
    from_reset_state: bool,
) -> Vec<(rtl::SignalId, rtl::SignalId)> {
    if from_reset_state {
        return Vec::new();
    }
    model
        .pairs()
        .iter()
        .filter(|p| p.class != StateClass::Memory)
        .map(|p| (p.signal2, p.signal1))
        .collect()
}

/// The full commitment: every architectural and microarchitectural register.
pub fn full_commitment(model: &UpecModel) -> BTreeSet<String> {
    model
        .pairs()
        .iter()
        .filter(|p| p.class != StateClass::Memory)
        .map(|p| p.name.clone())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SecretScenario;
    use soc::{SocConfig, SocVariant};

    fn tiny(variant: SocVariant) -> SocConfig {
        SocConfig::new(variant)
            .with_registers(4)
            .with_cache_lines(2)
            .with_miss_latency(1)
            .with_store_latency(1)
    }

    #[test]
    fn secret_not_in_cache_produces_no_alert_at_window_one() {
        let model = UpecModel::new(&tiny(SocVariant::Secure), SecretScenario::NotInCache);
        let outcome = UpecChecker::new().check_full(&model, UpecOptions::window(1));
        assert!(outcome.is_proven(), "outcome: {outcome:?}");
    }

    #[test]
    fn secret_in_cache_produces_a_p_alert_on_the_secure_design() {
        let model = UpecModel::new(&tiny(SocVariant::Secure), SecretScenario::InCache);
        let outcome = UpecChecker::new().check_full(&model, UpecOptions::window(2));
        let alert = outcome.alert().expect("expected a propagation alert");
        assert_eq!(alert.kind, AlertKind::PAlert, "alert: {alert:?}");
        assert!(!alert.microarchitectural_differences.is_empty());
    }

    #[test]
    fn secure_design_has_no_l_alert_at_small_windows() {
        let model = UpecModel::new(&tiny(SocVariant::Secure), SecretScenario::InCache);
        for k in 1..=2 {
            let outcome = UpecChecker::new().check_architectural(&model, UpecOptions::window(k));
            assert!(
                outcome.is_proven(),
                "unexpected L-alert at window {k}: {:?}",
                outcome.alert()
            );
        }
    }

    #[test]
    fn orc_variant_produces_an_l_alert() {
        let model = UpecModel::new(&tiny(SocVariant::Orc), SecretScenario::InCache);
        let mut found = None;
        for k in 1..=5 {
            let outcome = UpecChecker::new().check_architectural(&model, UpecOptions::window(k));
            if let Some(alert) = outcome.alert() {
                found = Some((k, alert.clone()));
                break;
            }
        }
        let (k, alert) = found.expect("the Orc variant must leak within five cycles");
        assert_eq!(alert.kind, AlertKind::LAlert);
        assert!(k >= 2, "timing difference needs at least the stall cycle");
    }

    #[test]
    fn unknown_is_reported_when_the_budget_is_tiny() {
        let model = UpecModel::new(&tiny(SocVariant::Secure), SecretScenario::InCache);
        let options = UpecOptions::window(2).with_conflict_limit(Some(1));
        let outcome = UpecChecker::new().check_full(&model, options);
        assert!(
            matches!(outcome, UpecOutcome::Unknown(_)) || outcome.alert().is_some(),
            "a one-conflict budget cannot complete a proof: {outcome:?}"
        );
    }
}
