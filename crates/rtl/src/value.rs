//! Constant bit-vector values.
//!
//! [`BitVec`] is the value domain of the word-level IR: a two-valued
//! (0/1) bit vector of a fixed width between 1 and 64 bits. All arithmetic
//! is performed modulo `2^width`, exactly like synthesizable RTL arithmetic.

use std::fmt;

/// Maximum supported bit-vector width.
///
/// The IR stores values in a `u64`, which is plenty for the register-transfer
/// descriptions handled by this workspace (the MiniRV SoC uses 32-bit words).
pub const MAX_WIDTH: u32 = 64;

/// A constant two-valued bit vector of width 1..=64.
///
/// # Examples
///
/// ```
/// use rtl::BitVec;
///
/// let a = BitVec::new(0x0f, 8);
/// let b = BitVec::new(0x01, 8);
/// assert_eq!(a.add(&b).as_u64(), 0x10);
/// assert_eq!(a.slice(3, 0).as_u64(), 0xf);
/// assert_eq!(a.concat(&b).width(), 16);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BitVec {
    bits: u64,
    width: u32,
}

impl BitVec {
    /// Creates a bit vector of `width` bits holding `value` truncated to the
    /// width.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or larger than [`MAX_WIDTH`].
    pub fn new(value: u64, width: u32) -> Self {
        assert!(
            (1..=MAX_WIDTH).contains(&width),
            "bit-vector width {width} out of range 1..={MAX_WIDTH}"
        );
        Self {
            bits: value & Self::mask(width),
            width,
        }
    }

    /// The all-zeros vector of the given width.
    pub fn zero(width: u32) -> Self {
        Self::new(0, width)
    }

    /// The all-ones vector of the given width.
    pub fn ones(width: u32) -> Self {
        Self::new(u64::MAX, width)
    }

    /// A single-bit vector holding `b`.
    pub fn bit(b: bool) -> Self {
        Self::new(u64::from(b), 1)
    }

    fn mask(width: u32) -> u64 {
        if width >= 64 {
            u64::MAX
        } else {
            (1u64 << width) - 1
        }
    }

    /// Width of the vector in bits.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Value as an unsigned integer.
    pub fn as_u64(&self) -> u64 {
        self.bits
    }

    /// Value as a signed integer (two's complement interpretation).
    pub fn as_i64(&self) -> i64 {
        let sign = 1u64 << (self.width - 1);
        if self.bits & sign != 0 {
            (self.bits | !Self::mask(self.width)) as i64
        } else {
            self.bits as i64
        }
    }

    /// Whether the vector is exactly zero.
    pub fn is_zero(&self) -> bool {
        self.bits == 0
    }

    /// Whether this is a single-bit vector equal to one.
    pub fn is_true(&self) -> bool {
        self.width == 1 && self.bits == 1
    }

    /// Returns bit `index` (0 = least significant).
    ///
    /// # Panics
    ///
    /// Panics if `index >= width`.
    pub fn get_bit(&self, index: u32) -> bool {
        assert!(index < self.width, "bit index {index} out of range");
        (self.bits >> index) & 1 == 1
    }

    /// Returns a copy with bit `index` set to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= width`.
    pub fn with_bit(&self, index: u32, value: bool) -> Self {
        assert!(index < self.width, "bit index {index} out of range");
        let bits = if value {
            self.bits | (1 << index)
        } else {
            self.bits & !(1 << index)
        };
        Self {
            bits,
            width: self.width,
        }
    }

    fn same_width(&self, other: &Self, op: &str) -> u32 {
        assert_eq!(
            self.width, other.width,
            "width mismatch in {op}: {} vs {}",
            self.width, other.width
        );
        self.width
    }

    /// Bitwise NOT.
    pub fn not(&self) -> Self {
        Self::new(!self.bits, self.width)
    }

    /// Two's-complement negation.
    pub fn neg(&self) -> Self {
        Self::new(self.bits.wrapping_neg(), self.width)
    }

    /// Bitwise AND. Panics on width mismatch.
    pub fn and(&self, other: &Self) -> Self {
        Self::new(self.bits & other.bits, self.same_width(other, "and"))
    }

    /// Bitwise OR. Panics on width mismatch.
    pub fn or(&self, other: &Self) -> Self {
        Self::new(self.bits | other.bits, self.same_width(other, "or"))
    }

    /// Bitwise XOR. Panics on width mismatch.
    pub fn xor(&self, other: &Self) -> Self {
        Self::new(self.bits ^ other.bits, self.same_width(other, "xor"))
    }

    /// Modular addition. Panics on width mismatch.
    pub fn add(&self, other: &Self) -> Self {
        Self::new(
            self.bits.wrapping_add(other.bits),
            self.same_width(other, "add"),
        )
    }

    /// Modular subtraction. Panics on width mismatch.
    pub fn sub(&self, other: &Self) -> Self {
        Self::new(
            self.bits.wrapping_sub(other.bits),
            self.same_width(other, "sub"),
        )
    }

    /// Equality comparison producing a single-bit vector.
    pub fn eq_bit(&self, other: &Self) -> Self {
        self.same_width(other, "eq");
        Self::bit(self.bits == other.bits)
    }

    /// Unsigned less-than producing a single-bit vector.
    pub fn ult(&self, other: &Self) -> Self {
        self.same_width(other, "ult");
        Self::bit(self.bits < other.bits)
    }

    /// Unsigned less-or-equal producing a single-bit vector.
    pub fn ule(&self, other: &Self) -> Self {
        self.same_width(other, "ule");
        Self::bit(self.bits <= other.bits)
    }

    /// Signed less-than producing a single-bit vector.
    pub fn slt(&self, other: &Self) -> Self {
        self.same_width(other, "slt");
        Self::bit(self.as_i64() < other.as_i64())
    }

    /// Logical shift left by a constant amount (zero fill).
    pub fn shl(&self, amount: u32) -> Self {
        if amount >= self.width {
            Self::zero(self.width)
        } else {
            Self::new(self.bits << amount, self.width)
        }
    }

    /// Logical shift right by a constant amount (zero fill).
    pub fn shr(&self, amount: u32) -> Self {
        if amount >= self.width {
            Self::zero(self.width)
        } else {
            Self::new(self.bits >> amount, self.width)
        }
    }

    /// OR-reduction to a single bit.
    pub fn reduce_or(&self) -> Self {
        Self::bit(self.bits != 0)
    }

    /// AND-reduction to a single bit.
    pub fn reduce_and(&self) -> Self {
        Self::bit(self.bits == Self::mask(self.width))
    }

    /// XOR-reduction (parity) to a single bit.
    pub fn reduce_xor(&self) -> Self {
        Self::bit(self.bits.count_ones() % 2 == 1)
    }

    /// Extracts bits `hi..=lo` (inclusive, `hi >= lo`) as a new vector of
    /// width `hi - lo + 1`.
    ///
    /// # Panics
    ///
    /// Panics if `hi < lo` or `hi >= width`.
    pub fn slice(&self, hi: u32, lo: u32) -> Self {
        assert!(hi >= lo, "slice hi {hi} < lo {lo}");
        assert!(
            hi < self.width,
            "slice hi {hi} out of range for width {}",
            self.width
        );
        let w = hi - lo + 1;
        Self::new(self.bits >> lo, w)
    }

    /// Concatenation: `self` becomes the most-significant part.
    ///
    /// # Panics
    ///
    /// Panics if the combined width exceeds [`MAX_WIDTH`].
    pub fn concat(&self, lo: &Self) -> Self {
        let w = self.width + lo.width;
        assert!(w <= MAX_WIDTH, "concat width {w} exceeds {MAX_WIDTH}");
        Self::new((self.bits << lo.width) | lo.bits, w)
    }

    /// Zero-extends to `width` bits.
    ///
    /// # Panics
    ///
    /// Panics if `width` is smaller than the current width.
    pub fn zext(&self, width: u32) -> Self {
        assert!(width >= self.width, "zext to narrower width");
        Self::new(self.bits, width)
    }

    /// Sign-extends to `width` bits.
    ///
    /// # Panics
    ///
    /// Panics if `width` is smaller than the current width.
    pub fn sext(&self, width: u32) -> Self {
        assert!(width >= self.width, "sext to narrower width");
        let sign = self.get_bit(self.width - 1);
        if sign {
            let ext = Self::mask(width) & !Self::mask(self.width);
            Self::new(self.bits | ext, width)
        } else {
            Self::new(self.bits, width)
        }
    }
}

impl fmt::Debug for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}'h{:x}", self.width, self.bits)
    }
}

impl fmt::Display for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}'h{:x}", self.width, self.bits)
    }
}

impl fmt::LowerHex for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.bits, f)
    }
}

impl fmt::Binary for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.bits, f)
    }
}

impl From<bool> for BitVec {
    fn from(b: bool) -> Self {
        Self::bit(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_truncates_to_width() {
        let v = BitVec::new(0x1ff, 8);
        assert_eq!(v.as_u64(), 0xff);
        assert_eq!(v.width(), 8);
    }

    #[test]
    #[should_panic(expected = "width")]
    fn zero_width_rejected() {
        let _ = BitVec::new(0, 0);
    }

    #[test]
    #[should_panic(expected = "width")]
    fn oversized_width_rejected() {
        let _ = BitVec::new(0, 65);
    }

    #[test]
    fn add_wraps_at_width() {
        let a = BitVec::new(0xff, 8);
        let b = BitVec::new(1, 8);
        assert_eq!(a.add(&b).as_u64(), 0);
    }

    #[test]
    fn sub_wraps_at_width() {
        let a = BitVec::new(0, 8);
        let b = BitVec::new(1, 8);
        assert_eq!(a.sub(&b).as_u64(), 0xff);
    }

    #[test]
    fn signed_interpretation() {
        let v = BitVec::new(0xff, 8);
        assert_eq!(v.as_i64(), -1);
        let v = BitVec::new(0x7f, 8);
        assert_eq!(v.as_i64(), 127);
    }

    #[test]
    fn slt_uses_signed_order() {
        let minus_one = BitVec::new(0xff, 8);
        let one = BitVec::new(1, 8);
        assert!(minus_one.slt(&one).is_true());
        assert!(!one.slt(&minus_one).is_true());
        assert!(one.ult(&minus_one).is_true());
    }

    #[test]
    fn slice_and_concat_roundtrip() {
        let v = BitVec::new(0xabcd, 16);
        let hi = v.slice(15, 8);
        let lo = v.slice(7, 0);
        assert_eq!(hi.as_u64(), 0xab);
        assert_eq!(lo.as_u64(), 0xcd);
        assert_eq!(hi.concat(&lo), v);
    }

    #[test]
    fn extensions() {
        let v = BitVec::new(0x80, 8);
        assert_eq!(v.zext(16).as_u64(), 0x0080);
        assert_eq!(v.sext(16).as_u64(), 0xff80);
        let v = BitVec::new(0x7f, 8);
        assert_eq!(v.sext(16).as_u64(), 0x007f);
    }

    #[test]
    fn reductions() {
        assert!(BitVec::new(0, 8).reduce_or().is_zero());
        assert!(BitVec::new(4, 8).reduce_or().is_true());
        assert!(BitVec::new(0xff, 8).reduce_and().is_true());
        assert!(!BitVec::new(0xfe, 8).reduce_and().is_true());
        assert!(BitVec::new(0b0111, 4).reduce_xor().is_true());
        assert!(!BitVec::new(0b0110, 4).reduce_xor().is_true());
    }

    #[test]
    fn shifts_saturate_to_zero() {
        let v = BitVec::new(0xff, 8);
        assert_eq!(v.shl(4).as_u64(), 0xf0);
        assert_eq!(v.shr(4).as_u64(), 0x0f);
        assert_eq!(v.shl(9).as_u64(), 0);
        assert_eq!(v.shr(9).as_u64(), 0);
    }

    #[test]
    fn bit_access() {
        let v = BitVec::new(0b1010, 4);
        assert!(!v.get_bit(0));
        assert!(v.get_bit(1));
        assert_eq!(v.with_bit(0, true).as_u64(), 0b1011);
        assert_eq!(v.with_bit(3, false).as_u64(), 0b0010);
    }

    #[test]
    fn width_64_is_supported() {
        let v = BitVec::new(u64::MAX, 64);
        assert_eq!(v.as_u64(), u64::MAX);
        assert_eq!(v.add(&BitVec::new(1, 64)).as_u64(), 0);
        assert_eq!(v.as_i64(), -1);
    }

    #[test]
    fn display_formats() {
        let v = BitVec::new(0x2a, 8);
        assert_eq!(format!("{v}"), "8'h2a");
        assert_eq!(format!("{v:x}"), "2a");
        assert_eq!(format!("{v:b}"), "101010");
    }
}
