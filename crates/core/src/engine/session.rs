//! A persistent, incremental UPEC solving session.

use crate::certify::{UnsatCertificate, VerdictCertificate, WitnessCertificate};
use crate::check::frame0_aliases;
use crate::engine::EngineError;
use crate::{
    Alert, AlertKind, RegisterPair, StateClass, UpecModel, UpecOptions, UpecOutcome, UpecStats,
};
use bmc::{UnrollError, UnrollOptions, Unrolling};
use rtl::BitVec;
use sat::SatResult;
use std::collections::BTreeSet;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Instant;

/// An incremental UPEC checking session: one persistent solver shared by
/// every bound and commitment queried against the same miter.
///
/// The paper's methodology re-solves the UPEC property many times — at every
/// window length while deepening, and at every commitment while diagnosing
/// P-alerts. A session keeps the unrolled miter and the SAT solver alive
/// across all of those queries:
///
/// * deepening from bound `k` to `k+1` only bit-blasts the new frame
///   ([`bmc::Unrolling::extend_to`]), so the solver keeps its learned
///   clauses, variable activities and saved phases;
/// * each proof obligation ("some committed register pair differs at `t+k`")
///   is guarded by a fresh activation literal and retired after the query,
///   so obligations never pollute later queries.
///
/// The net effect — asserted by this module's tests — is that checking
/// bounds `1..=k` through one session costs measurably fewer conflicts and
/// propagations than `k` independent solve-from-scratch checks.
///
/// # Examples
///
/// ```
/// use soc::{SocConfig, SocVariant};
/// use upec::engine::IncrementalSession;
/// use upec::{full_commitment, SecretScenario, UpecModel};
///
/// let config = SocConfig::new(SocVariant::Secure)
///     .with_registers(4)
///     .with_cache_lines(2)
///     .with_miss_latency(1)
///     .with_store_latency(1);
/// let model = UpecModel::new(&config, SecretScenario::NotInCache);
/// let mut session = IncrementalSession::new(&model, None);
/// let commitment = full_commitment(&model);
/// // Walk the bound upwards; the solver persists across iterations.
/// for k in 1..=2 {
///     assert!(session.check_bound(k, &commitment).is_proven());
/// }
/// ```
pub struct IncrementalSession<'m> {
    model: &'m UpecModel,
    unrolling: Unrolling<'m>,
    /// Highest frame whose window constraints have been asserted.
    constrained_through: usize,
}

impl<'m> IncrementalSession<'m> {
    /// Opens a session on a miter with an optional per-query conflict budget.
    pub fn new(model: &'m UpecModel, conflict_limit: Option<u64>) -> Self {
        Self::with_options(
            model,
            UpecOptions::window(0).with_conflict_limit(conflict_limit),
        )
    }

    /// Opens a session honoring every knob of [`UpecOptions`] (the `window`
    /// field is ignored — bounds are chosen per query).
    ///
    /// # Panics
    ///
    /// Panics if a model constraint cannot be encoded; see
    /// [`IncrementalSession::try_with_options`] for the non-panicking form.
    pub fn with_options(model: &'m UpecModel, options: UpecOptions) -> Self {
        Self::try_with_options(model, options).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Opens a session honoring every knob of [`UpecOptions`], reporting
    /// malformed model constraints as a typed [`EngineError`] instead of
    /// panicking.
    ///
    /// # Errors
    ///
    /// [`EngineError::MalformedConstraint`] when an initial or window
    /// constraint of the model cannot be encoded on the unrolled miter.
    pub fn try_with_options(
        model: &'m UpecModel,
        options: UpecOptions,
    ) -> Result<Self, EngineError> {
        let unroll_options = UnrollOptions {
            use_initial_values: options.from_reset_state,
            conflict_limit: options.conflict_limit,
            budget: options.budget,
            eager_encoding: options.eager_encoding,
            no_simplify: options.no_simplify,
            simplify_trial_conflicts: options.simplify_trial_conflicts,
            proof_log: options.certify,
            search: options.search,
        };
        let aliases = frame0_aliases(model, options.from_reset_state);
        let mut unrolling = if options.eager_encoding {
            Unrolling::with_frame0_aliases(model.netlist(), unroll_options, &aliases)
        } else {
            // Compile once per miter, clone per frame: every session shares
            // the model's pruned-and-hashed schedule.
            Unrolling::with_compiled(
                model.netlist(),
                Arc::clone(model.compiled_transition()),
                unroll_options,
                &aliases,
            )
        };
        for constraint in model
            .initial_constraints()
            .iter()
            .chain(model.window_constraints())
        {
            unrolling
                .assume_signal_true(0, constraint.signal)
                .map_err(|e| EngineError::MalformedConstraint {
                    label: constraint.label.to_string(),
                    reason: e.to_string(),
                })?;
        }
        Ok(Self {
            model,
            unrolling,
            constrained_through: 0,
        })
    }

    /// The miter this session is solving.
    pub fn model(&self) -> &'m UpecModel {
        self.model
    }

    /// Installs (or removes) a shared cancellation flag: raising it from
    /// another thread aborts the in-flight query with
    /// [`UpecOutcome::Unknown`]. Used by the portfolio scheduler to stop
    /// losing workers.
    pub fn set_interrupt(&mut self, flag: Option<Arc<AtomicBool>>) {
        self.unrolling.set_interrupt(flag);
    }

    /// Replaces the deterministic per-query resource budget (conflicts /
    /// propagations / decisions; see [`sat::Budget`]). The budget covers each
    /// subsequent [`IncrementalSession::check_bound`] call as a whole; an
    /// exhausted query answers [`UpecOutcome::Unknown`] with
    /// [`IncrementalSession::last_stop`] reporting
    /// [`sat::StopCause::BudgetExhausted`], and the session stays resumable —
    /// re-checking the same bound under a larger budget continues from the
    /// accumulated solver state.
    pub fn set_budget(&mut self, budget: sat::Budget) {
        self.unrolling.set_budget(budget);
    }

    /// The deterministic per-query resource budget currently in force.
    pub fn budget(&self) -> sat::Budget {
        self.unrolling.budget()
    }

    /// Installs (or removes) a cooperative [`sat::CancelToken`]: raising it
    /// aborts the in-flight query with [`UpecOutcome::Unknown`] at the next
    /// solver restart boundary. Used by the portfolio scheduler to stop
    /// losing members without poisoning their sessions.
    pub fn set_cancel_token(&mut self, token: Option<sat::CancelToken>) {
        self.unrolling.set_cancel_token(token);
    }

    /// Why the most recent query's final solver episode stopped early
    /// (`None` after a decided query). See [`sat::Solver::last_stop`].
    pub fn last_stop(&self) -> Option<sat::StopCause> {
        self.unrolling.last_stop()
    }

    /// Arms a one-shot deterministic fault on the session's solver (see
    /// [`sat::Solver::inject_fault`]). Compiled only under the `faults`
    /// feature.
    #[cfg(feature = "faults")]
    pub fn inject_fault(&mut self, plan: Option<sat::faults::FaultPlan>) {
        self.unrolling.inject_fault(plan);
    }

    /// Lifetime solver statistics of the session (counters accumulate over
    /// every query; see [`sat::SolverStats::delta_since`]).
    pub fn solver_stats(&self) -> sat::SolverStats {
        self.unrolling.solver_stats()
    }

    /// Encoding statistics of the session's unrolling: strategy, schedule
    /// size, encoded slot instances and CNF size (see [`bmc::EncodeStats`]).
    pub fn encode_stats(&self) -> bmc::EncodeStats {
        self.unrolling.encode_stats()
    }

    /// Counters of the CNF simplification pipeline (variables eliminated,
    /// clauses subsumed, …; all zero when [`UpecOptions::no_simplify`]
    /// disabled it). See [`sat::SimplifyStats`].
    pub fn simplify_stats(&self) -> sat::SimplifyStats {
        self.unrolling.simplify_stats()
    }

    /// The session's accumulated DRAT proof log, when the session was opened
    /// with [`UpecOptions::with_certificates`]. The log spans the whole
    /// session (all frames, all queries); per-query certificates are the
    /// trimmed views returned by
    /// [`IncrementalSession::check_bound_certified`].
    pub fn proof_log(&self) -> Option<&sat::ProofLog> {
        self.unrolling.proof_log()
    }

    /// Stable fingerprint of the session's transition relation and frame-0
    /// assumption structure — the key under which this session may exchange
    /// learned clauses with sibling sessions (see
    /// [`bmc::Unrolling::share_fingerprint`]). `None` when the session's
    /// encoding cannot share (eager mode).
    pub fn share_fingerprint(&self) -> Option<u64> {
        self.unrolling.share_fingerprint()
    }

    /// Drains this session's exportable learned clauses — those whose
    /// derivations used only transition-definitional clauses — into `sink`
    /// in canonical position form (see [`bmc::Unrolling::export_shared`]).
    pub fn export_shared(&mut self, sink: &mut Vec<bmc::SharedClause>) {
        self.unrolling.export_shared(sink);
    }

    /// Imports canonical shared clauses published by sibling sessions with
    /// the same [`IncrementalSession::share_fingerprint`]. Clauses over
    /// frames or slots this session has not encoded are skipped, as is the
    /// whole import when the session records a DRAT proof log (certified
    /// verdicts never depend on foreign lemmas). Returns the number of
    /// clauses actually imported.
    pub fn import_shared(&mut self, clauses: &[bmc::SharedClause]) -> usize {
        self.unrolling.import_shared(clauses)
    }

    /// Checks the UPEC property at bound `k` with the obligation restricted
    /// to `commitment`, reusing all solver state from earlier queries.
    ///
    /// Semantics are identical to [`crate::UpecChecker::check`] — in fact the
    /// checker is now a thin wrapper that opens a session for a single query.
    ///
    /// # Panics
    ///
    /// Panics if the commitment is empty or names an unknown register; see
    /// [`IncrementalSession::try_check_bound`] for the non-panicking form.
    pub fn check_bound(&mut self, k: usize, commitment: &BTreeSet<String>) -> UpecOutcome {
        self.try_check_bound(k, commitment)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Like [`IncrementalSession::check_bound`], but reports malformed
    /// queries as a typed [`EngineError`] instead of panicking.
    ///
    /// # Errors
    ///
    /// [`EngineError::EmptyCommitment`] /
    /// [`EngineError::UnknownRegister`] for malformed commitments,
    /// [`EngineError::MalformedConstraint`] when a window constraint or
    /// obligation signal cannot be encoded.
    pub fn try_check_bound(
        &mut self,
        k: usize,
        commitment: &BTreeSet<String>,
    ) -> Result<UpecOutcome, EngineError> {
        Ok(self.check_bound_inner(k, commitment, false)?.0)
    }

    /// Like [`IncrementalSession::check_bound`], but also packages the
    /// verdict as an independently checkable [`VerdictCertificate`]:
    ///
    /// * [`UpecOutcome::Proven`] ⇒ the session's DRAT proof log, trimmed to
    ///   the lemmas this query's refutation actually uses, keyed by the
    ///   query's activation-literal assumption;
    /// * [`UpecOutcome::Violated`] ⇒ the SAT witness decoded into a concrete
    ///   per-cycle [`sim::WitnessTrace`] plus the divergences it must
    ///   reproduce.
    ///
    /// # Errors
    ///
    /// * [`EngineError::CertificationUnavailable`] if the session was not
    ///   opened with [`UpecOptions::with_certificates`] (proven bounds need
    ///   the proof log recording from the first clause on);
    /// * [`EngineError::UncertifiableVerdict`] when the query stops without
    ///   a verdict (budget exhausted or cancelled) — an undecided query must
    ///   never emit a certificate. The error carries the effort spent and
    ///   the stop cause; the session stays valid and the bound may be
    ///   re-checked under a larger budget;
    /// * the [`IncrementalSession::try_check_bound`] errors for malformed
    ///   commitments.
    pub fn check_bound_certified(
        &mut self,
        k: usize,
        commitment: &BTreeSet<String>,
    ) -> Result<(UpecOutcome, Option<VerdictCertificate>), EngineError> {
        if self.unrolling.proof_log().is_none() {
            return Err(EngineError::CertificationUnavailable);
        }
        let (outcome, certificate) = self.check_bound_inner(k, commitment, true)?;
        if let UpecOutcome::Unknown(stats) = &outcome {
            debug_assert!(certificate.is_none(), "an undecided query has no verdict");
            return Err(EngineError::UncertifiableVerdict {
                window: k,
                stats: *stats,
                stop: self.unrolling.last_stop(),
            });
        }
        Ok((outcome, certificate))
    }

    fn check_bound_inner(
        &mut self,
        k: usize,
        commitment: &BTreeSet<String>,
        certify: bool,
    ) -> Result<(UpecOutcome, Option<VerdictCertificate>), EngineError> {
        let start = Instant::now();
        let mut query_span = obs::span("upec.check_bound");
        query_span.attr_u64("window", k as u64);
        let stats_before = self.unrolling.solver_stats();
        let mut encode_span = obs::span("bmc.encode");
        let slots_before = self.unrolling.encode_stats().encoded_slots;
        self.unrolling.extend_to(k);
        while self.constrained_through < k {
            self.constrained_through += 1;
            let frame = self.constrained_through;
            for constraint in self.model.window_constraints() {
                self.unrolling
                    .assume_signal_true(frame, constraint.signal)
                    .map_err(|e| EngineError::MalformedConstraint {
                        label: constraint.label.to_string(),
                        reason: e.to_string(),
                    })?;
            }
        }

        for name in commitment {
            if self.model.pair(name).is_none() {
                return Err(EngineError::UnknownRegister { name: name.clone() });
            }
        }
        let committed: Vec<&RegisterPair> = self
            .model
            .pairs()
            .iter()
            .filter(|p| p.class != StateClass::Memory && commitment.contains(&p.name))
            .collect();
        if committed.is_empty() {
            return Err(EngineError::EmptyCommitment);
        }

        let obligation_lits: Vec<(String, sat::Lit)> = committed
            .iter()
            .map(|p| {
                let lit = self.unrolling.bit_lit(k, p.equal).map_err(|e| {
                    EngineError::MalformedConstraint {
                        label: format!("equality signal of `{}`", p.name),
                        reason: e.to_string(),
                    }
                })?;
                Ok((p.name.clone(), lit))
            })
            .collect::<Result<_, EngineError>>()?;
        let activation = self.unrolling.fresh_lit();
        self.unrolling
            .add_clause_activated(activation, obligation_lits.iter().map(|(_, l)| !*l));
        let encoded_slots = self.unrolling.encode_stats().encoded_slots - slots_before;
        encode_span.attr_u64("encoded_slots", encoded_slots as u64);
        drop(encode_span);

        let result = self.unrolling.solve(&[activation]);
        let delta = self.unrolling.solver_stats().delta_since(&stats_before);
        let stats = UpecStats {
            variables: self.unrolling.num_vars(),
            clauses: self.unrolling.num_clauses(),
            conflicts: delta.conflicts,
            propagations: delta.propagations,
            restarts: delta.restarts,
            arena_collections: delta.arena_collections,
            runtime: start.elapsed(),
            window: k,
            stop: self.unrolling.last_stop(),
        };

        let mut certificate: Option<VerdictCertificate> = None;
        let outcome = match result {
            SatResult::Unsat => {
                if certify {
                    // Snapshot and trim *before* the activation literal is
                    // retired: the retirement unit `!activation` would join
                    // the axiom set and trivialize the refutation of a query
                    // that assumes `activation`.
                    let log = self
                        .unrolling
                        .proof_log()
                        .expect("checked in check_bound_certified");
                    let (proof, _) = sat::drat::trim(log, &[activation])
                        .expect("an unsat verdict must replay through the DRAT checker");
                    certificate = Some(VerdictCertificate::Proof(UnsatCertificate {
                        window: k,
                        proof,
                        assumptions: vec![activation],
                    }));
                }
                UpecOutcome::Proven(stats)
            }
            SatResult::Unknown => UpecOutcome::Unknown(stats),
            SatResult::Sat(sat_model) => {
                let mut arch = Vec::new();
                let mut micro = Vec::new();
                let mut values = Vec::new();
                for pair in &committed {
                    let v1 = self
                        .unrolling
                        .value_in_model(&sat_model, k, pair.signal1)
                        .expect("frame exists");
                    let v2 = self
                        .unrolling
                        .value_in_model(&sat_model, k, pair.signal2)
                        .expect("frame exists");
                    if v1 != v2 {
                        match pair.class {
                            StateClass::Architectural => arch.push(pair.name.clone()),
                            StateClass::Microarchitectural => micro.push(pair.name.clone()),
                            StateClass::Memory => {}
                        }
                        values.push((pair.name.clone(), v1, v2));
                    }
                }
                let kind = if arch.is_empty() {
                    AlertKind::PAlert
                } else {
                    AlertKind::LAlert
                };
                if certify {
                    certificate = Some(VerdictCertificate::Witness(WitnessCertificate {
                        window: k,
                        trace: self.decode_witness(&sat_model, k),
                        expected_divergences: values.clone(),
                    }));
                }
                UpecOutcome::Violated(
                    Alert {
                        kind,
                        window: k,
                        architectural_differences: arch,
                        microarchitectural_differences: micro,
                        differing_values: values,
                    },
                    stats,
                )
            }
        };
        self.unrolling.retire_activation(activation);
        query_span.attr_str("verdict", outcome.verdict_name());
        query_span.attr_u64("conflicts", delta.conflicts);
        query_span.attr_u64("propagations", delta.propagations);
        query_span.attr_u64("restarts", delta.restarts);
        query_span.attr_u64("arena_collections", delta.arena_collections);
        Ok((outcome, certificate))
    }

    /// Decodes a SAT witness into a self-contained, name-based stimulus: the
    /// frame-0 value of every register plus every primary input's value in
    /// frames `0..=k`.
    ///
    /// Decoding goes through [`sat::Model`], which the solver has already
    /// extended over variables the CNF simplifier eliminated — the
    /// frozen-variable contract guarantees the unrolling's own literals are
    /// never eliminated, and eliminated auxiliary variables get consistent
    /// extension values. Signals the query never encoded (outside the cone
    /// of every constraint and obligation) are unconstrained; they default
    /// to zero, which cannot affect the violated property.
    fn decode_witness(&self, model: &sat::Model, k: usize) -> sim::WitnessTrace {
        let netlist = self.model.netlist();
        let unconstrained = |e: &UnrollError| {
            matches!(
                e,
                UnrollError::NotInSchedule { .. } | UnrollError::NotEncoded { .. }
            )
        };
        let mut initial_registers = Vec::with_capacity(netlist.register_count());
        for info in netlist.registers() {
            let value = match self.unrolling.value_in_model(model, 0, info.signal) {
                Ok(v) => v,
                Err(ref e) if unconstrained(e) => BitVec::zero(info.width),
                Err(e) => panic!("register `{}` undecodable at frame 0: {e}", info.name),
            };
            initial_registers.push((info.name.clone(), value));
        }
        let mut inputs = Vec::with_capacity(k + 1);
        for frame in 0..=k {
            let mut bindings = Vec::new();
            for &signal in netlist.inputs() {
                let rtl::Node::Input { name, width } = netlist.node(signal) else {
                    unreachable!("the input list holds input nodes");
                };
                let value = match self.unrolling.value_in_model(model, frame, signal) {
                    Ok(v) => v,
                    Err(ref e) if unconstrained(e) => BitVec::zero(*width),
                    Err(e) => panic!("input `{name}` undecodable at frame {frame}: {e}"),
                };
                bindings.push((name.clone(), value));
            }
            inputs.push(bindings);
        }
        sim::WitnessTrace {
            initial_registers,
            inputs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{full_commitment, SecretScenario, UpecChecker};
    use soc::{SocConfig, SocVariant};

    fn tiny(variant: SocVariant) -> SocConfig {
        SocConfig::new(variant)
            .with_registers(4)
            .with_cache_lines(2)
            .with_miss_latency(1)
            .with_store_latency(1)
    }

    /// The acceptance check of the incremental engine: walking bounds `1..=k`
    /// through one session must spend measurably fewer conflicts and
    /// propagations than `k` independent solve-from-scratch checks of the
    /// same bounds.
    ///
    /// Both sides run with `no_simplify` so the comparison isolates the
    /// incremental-reuse property this test pins: the CNF simplifier
    /// perturbs conflict counts in both directions (probing propagations,
    /// resolvent clauses), which would turn the comparison into a test of
    /// the simplifier's mood rather than of state reuse. The simplified
    /// path's own regression is `simplified_walk_matches_fresh_solves`.
    #[test]
    fn incremental_walk_beats_independent_solves() {
        // The Meltdown-style miter produces a P-alert at every bound, so each
        // bound's query does real search work whose learned clauses the next
        // bound can reuse. (A walk whose early bounds close by propagation
        // alone would teach the solver nothing and the comparison would tie.)
        let model = UpecModel::new(&tiny(SocVariant::MeltdownStyle), SecretScenario::InCache);
        let commitment = full_commitment(&model);
        let options = UpecOptions::window(0).no_simplify();
        let max_k = 3;

        // k independent from-scratch solves.
        let mut scratch_conflicts = 0u64;
        let mut scratch_propagations = 0u64;
        for k in 1..=max_k {
            let mut session = IncrementalSession::with_options(&model, options);
            let outcome = session.check_bound(k, &commitment);
            assert!(outcome.alert().is_some(), "k={k}: {outcome:?}");
            let stats = session.solver_stats();
            scratch_conflicts += stats.conflicts;
            scratch_propagations += stats.propagations;
        }

        // One incremental session over the same bounds.
        let mut session = IncrementalSession::with_options(&model, options);
        for k in 1..=max_k {
            assert!(session.check_bound(k, &commitment).alert().is_some());
        }
        let incremental = session.solver_stats();

        assert!(
            incremental.conflicts < scratch_conflicts
                && incremental.propagations < scratch_propagations,
            "incremental session must be cheaper: {} vs {} conflicts, {} vs {} propagations",
            incremental.conflicts,
            scratch_conflicts,
            incremental.propagations,
            scratch_propagations,
        );
    }

    /// Session outcomes agree with the one-shot checker at every bound.
    #[test]
    fn session_matches_checker_verdicts() {
        let model = UpecModel::new(&tiny(SocVariant::Orc), SecretScenario::InCache);
        let commitment: BTreeSet<String> = model
            .pairs_of_class(StateClass::Architectural)
            .map(|p| p.name.clone())
            .collect();
        let checker = UpecChecker::new();
        let mut session = IncrementalSession::new(&model, None);
        for k in 1..=2 {
            let fresh = checker.check(&model, UpecOptions::window(k), &commitment);
            let incremental = session.check_bound(k, &commitment);
            assert_eq!(
                fresh.is_proven(),
                incremental.is_proven(),
                "verdict mismatch at k={k}: fresh={fresh:?} incremental={incremental:?}"
            );
            if let (Some(a), Some(b)) = (fresh.alert(), incremental.alert()) {
                assert_eq!(a.kind, b.kind, "alert kind mismatch at k={k}");
            }
        }
    }

    /// Regression for the simplifier's frozen-variable contract: with CNF
    /// simplification on (the default), a session extended bound-by-bound
    /// must answer exactly like fresh per-bound sessions running the
    /// `no_simplify` baseline. A frame-boundary or trace-extraction
    /// variable wrongly eliminated between bounds would panic or flip a
    /// verdict here.
    #[test]
    fn simplified_walk_matches_fresh_solves() {
        let model = UpecModel::new(&tiny(SocVariant::Orc), SecretScenario::InCache);
        let commitment: BTreeSet<String> = model
            .pairs_of_class(StateClass::Architectural)
            .map(|p| p.name.clone())
            .collect();
        // Orc with the architectural obligation is proven at k=1 and
        // L-alerts at k=2, covering both outcome paths. A zero trial budget
        // makes the adaptive trigger run the pipeline before any query that
        // hits a conflict, so this test always exercises the simplifier.
        let mut walked =
            IncrementalSession::with_options(&model, UpecOptions::window(0).with_simplify_trial(0));
        for k in 1..=2 {
            let walked_outcome = walked.check_bound(k, &commitment);
            let mut fresh =
                IncrementalSession::with_options(&model, UpecOptions::window(k).no_simplify());
            let fresh_outcome = fresh.check_bound(k, &commitment);
            assert_eq!(
                walked_outcome.is_proven(),
                fresh_outcome.is_proven(),
                "verdict mismatch at k={k}: walked={walked_outcome:?} fresh={fresh_outcome:?}"
            );
            match (walked_outcome.alert(), fresh_outcome.alert()) {
                (Some(a), Some(b)) => assert_eq!(a.kind, b.kind, "alert kind at k={k}"),
                (None, None) => {}
                (a, b) => panic!("k={k}: alert presence mismatch: {a:?} vs {b:?}"),
            }
        }
        assert!(
            walked.simplify_stats().eliminated_vars > 0,
            "the simplifier must actually have run in the walked session"
        );
    }

    // Commitment shrinking mid-session (the methodology's P-alert diagnosis
    // loop) is exercised end to end by the `methodology` module's tests:
    // `run_methodology` drives its whole iteration through one session.
}
