//! Seed determinism of the fuzz pipeline: equal seeds must reproduce
//! byte-identical programs, identical mining reports and identical minimized
//! witnesses. The registry pins mined witnesses by `(seed, case_index)`, so
//! any nondeterminism here would silently unpin them.

use soc::fuzz::{mine, minimize, FuzzOptions, ProgramGen};
use soc::{SocConfig, SocVariant};

/// A bounded option set that still reaches the first mined witness
/// (`case_index` 36 of the default seed) but stays fast enough for the
/// default debug suite: one vulnerable variant instead of three.
fn bounded_options() -> FuzzOptions {
    FuzzOptions {
        programs: 40,
        variants: vec![SocVariant::MeltdownStyle],
        ..FuzzOptions::default()
    }
}

#[test]
fn same_seed_reproduces_byte_identical_programs() {
    let config = SocConfig::new(SocVariant::Secure);
    let mut a = ProgramGen::new(0xdabd_4c19, &config);
    let mut b = ProgramGen::new(0xdabd_4c19, &config);
    for _ in 0..16 {
        let pa = a.next_program_in(6, 16);
        let pb = b.next_program_in(6, 16);
        // Compare down to the instruction encodings, not just the decoded
        // enum values: the pinned witnesses are byte pins.
        let bytes_a: Vec<u32> = pa.iter().map(|(_, i)| i.encode()).collect();
        let bytes_b: Vec<u32> = pb.iter().map(|(_, i)| i.encode()).collect();
        assert_eq!(bytes_a, bytes_b);
        assert_eq!(pa.base(), pb.base());
    }
}

#[test]
fn mining_is_deterministic() {
    let opts = bounded_options();
    let a = mine(&opts);
    let b = mine(&opts);
    assert_eq!(a.programs_run, b.programs_run);
    assert_eq!(a.divergent_runs, b.divergent_runs);
    assert_eq!(a.secure_divergences, 0);
    assert_eq!(a.cosim_mismatches, 0);
    assert_eq!(a.witnesses.len(), b.witnesses.len());
    assert!(
        !a.witnesses.is_empty(),
        "the bounded run must reach the first witness"
    );
    for (wa, wb) in a.witnesses.iter().zip(&b.witnesses) {
        assert_eq!(wa.variant, wb.variant);
        assert_eq!(wa.channel, wb.channel);
        assert_eq!(wa.case_index, wb.case_index);
        assert_eq!(wa.program, wb.program);
    }
}

#[test]
fn minimization_is_deterministic_and_sound() {
    let opts = bounded_options();
    let report = mine(&opts);
    let witness = &report.witnesses[0];
    let config = SocConfig::new(witness.variant);
    let a = minimize(&config, &witness.program, witness.channel, &opts);
    let b = minimize(&config, &witness.program, witness.channel, &opts);
    assert_eq!(a.program, b.program);
    assert_eq!(a.oracle_runs, b.oracle_runs);
    assert!(a.minimized_len <= a.original_len);
    // The minimized program still diverges through the same channel: the
    // round trip `minimize` promises.
    assert_eq!(
        soc::fuzz::divergence(&config, &a.program, &opts),
        Some(witness.channel)
    );
}
