//! Graphviz (DOT) export of netlists for debugging and documentation.

use crate::{Netlist, Node};
use std::fmt::Write as _;

/// Renders the netlist as a Graphviz `digraph`.
///
/// The output is intended for small design fragments (e.g. a single pipeline
/// control block) — a full SoC produces a graph too large to lay out usefully.
///
/// # Examples
///
/// ```
/// use rtl::{Netlist, dot};
///
/// let mut n = Netlist::new("tiny");
/// let a = n.input("a", 1);
/// let b = n.input("b", 1);
/// let y = n.and(a, b);
/// n.output("y", y);
/// let graph = dot::to_dot(&n);
/// assert!(graph.starts_with("digraph tiny"));
/// assert!(graph.contains("And"));
/// ```
pub fn to_dot(netlist: &Netlist) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph {} {{", sanitize(netlist.name()));
    let _ = writeln!(out, "  rankdir=LR;");
    let _ = writeln!(out, "  node [fontname=\"monospace\"];");
    for id in netlist.signals() {
        let label = node_label(netlist, id);
        let shape = match netlist.node(id) {
            Node::Input { .. } => "invhouse",
            Node::Register { .. } => "box3d",
            Node::Const(_) => "plaintext",
            Node::Mux { .. } => "trapezium",
            _ => "box",
        };
        let _ = writeln!(
            out,
            "  n{} [label=\"{}\", shape={}];",
            id.index(),
            label,
            shape
        );
        for op in netlist.node(id).operands() {
            let _ = writeln!(out, "  n{} -> n{};", op.index(), id.index());
        }
    }
    for reg in netlist.registers() {
        if let Some(next) = reg.next {
            let _ = writeln!(
                out,
                "  n{} -> n{} [style=dashed, label=\"next\"];",
                next.index(),
                reg.signal.index()
            );
        }
    }
    for port in netlist.outputs() {
        let _ = writeln!(
            out,
            "  out_{} [label=\"{}\", shape=house];",
            sanitize(&port.name),
            port.name
        );
        let _ = writeln!(
            out,
            "  n{} -> out_{};",
            port.signal.index(),
            sanitize(&port.name)
        );
    }
    let _ = writeln!(out, "}}");
    out
}

fn node_label(netlist: &Netlist, id: crate::SignalId) -> String {
    let node = netlist.node(id);
    let base = match node {
        Node::Input { name, width } => format!("{name}[{width}]"),
        Node::Const(v) => format!("{v}"),
        Node::Register { name, width, .. } => format!("{name}[{width}]"),
        Node::Unary { op, .. } => format!("{op:?}"),
        Node::Binary { op, .. } => format!("{op:?}"),
        Node::Mux { .. } => "Mux".to_string(),
        Node::Slice { hi, lo, .. } => format!("[{hi}:{lo}]"),
        Node::Concat { .. } => "Concat".to_string(),
    };
    sanitize(&base)
}

fn sanitize(s: &str) -> String {
    s.chars()
        .map(|c| {
            if c.is_alphanumeric() || c == '[' || c == ']' || c == ':' || c == '\'' || c == '.' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_contains_all_ports_and_register_edges() {
        let mut n = Netlist::new("dot test");
        let a = n.input("a", 2);
        let r = n.register("state", 2);
        n.set_next(r, a);
        n.output("o", r.value());
        let dot = to_dot(&n);
        assert!(dot.contains("digraph dot_test"));
        assert!(dot.contains("a[2]"));
        assert!(dot.contains("state[2]"));
        assert!(dot.contains("style=dashed"));
        assert!(dot.contains("out_o"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn sanitize_replaces_awkward_characters() {
        assert_eq!(sanitize("a b/c"), "a_b_c");
        assert_eq!(sanitize("core.pc"), "core.pc");
    }
}
