//! Interval properties: assume/prove conditions attached to time frames.

use rtl::SignalId;

/// When a property term applies, in clock cycles relative to the symbolic
/// starting time point `t` of the interval property.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum When {
    /// At exactly one time offset.
    At(usize),
    /// During an inclusive range of time offsets (`during t..t+k` in the
    /// notation of the paper's Fig. 4).
    During(usize, usize),
}

impl When {
    /// The frames covered by this specification, clipped to `max`.
    pub fn frames(&self, max: usize) -> Vec<usize> {
        match *self {
            When::At(t) => {
                if t <= max {
                    vec![t]
                } else {
                    Vec::new()
                }
            }
            When::During(a, b) => (a..=b.min(max)).collect(),
        }
    }

    /// The last frame this specification touches.
    pub fn last_frame(&self) -> usize {
        match *self {
            When::At(t) => t,
            When::During(_, b) => b,
        }
    }
}

/// A single-bit condition evaluated at one or more time frames.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PropertyTerm {
    /// Human-readable label used in reports and counterexamples.
    pub label: String,
    /// Time frames at which the condition applies.
    pub when: When,
    /// The single-bit signal that must hold.
    pub signal: SignalId,
}

impl PropertyTerm {
    /// Creates a term that must hold at exactly one offset.
    pub fn at(label: impl Into<String>, frame: usize, signal: SignalId) -> Self {
        Self {
            label: label.into(),
            when: When::At(frame),
            signal,
        }
    }

    /// Creates a term that must hold during an inclusive range of offsets.
    pub fn during(label: impl Into<String>, from: usize, to: usize, signal: SignalId) -> Self {
        Self {
            label: label.into(),
            when: When::During(from, to),
            signal,
        }
    }
}

/// An interval property in the style of the paper's Fig. 4:
///
/// ```text
/// assume:
///   at t:        <assumption>;
///   during t..t+k: <assumption>;
/// prove:
///   at t+k:      <obligation>;
/// ```
///
/// The property is checked on a bounded model of length `length` (the `k` of
/// the paper) starting from a symbolic initial state, i.e. the assumptions
/// are the only knowledge about cycle `t`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntervalProperty {
    /// Name used in reports.
    pub name: String,
    /// Window length `k`; the unrolling spans frames `0..=length`.
    pub length: usize,
    /// Conditions assumed to hold.
    pub assumptions: Vec<PropertyTerm>,
    /// Conditions that must be proven to hold.
    pub obligations: Vec<PropertyTerm>,
}

impl IntervalProperty {
    /// Creates an empty property with the given name and window length.
    pub fn new(name: impl Into<String>, length: usize) -> Self {
        Self {
            name: name.into(),
            length,
            assumptions: Vec::new(),
            obligations: Vec::new(),
        }
    }

    /// Adds an assumption term (builder style).
    pub fn assume(mut self, term: PropertyTerm) -> Self {
        self.assumptions.push(term);
        self
    }

    /// Adds a proof obligation term (builder style).
    pub fn prove(mut self, term: PropertyTerm) -> Self {
        self.obligations.push(term);
        self
    }

    /// The largest frame index referenced by the property (at least
    /// `length`).
    pub fn max_frame(&self) -> usize {
        self.assumptions
            .iter()
            .chain(&self.obligations)
            .map(|t| t.when.last_frame())
            .chain(std::iter::once(self.length))
            .max()
            .unwrap_or(self.length)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn when_frames_expand_and_clip() {
        assert_eq!(When::At(3).frames(5), vec![3]);
        assert_eq!(When::At(7).frames(5), Vec::<usize>::new());
        assert_eq!(When::During(1, 3).frames(5), vec![1, 2, 3]);
        assert_eq!(When::During(1, 9).frames(3), vec![1, 2, 3]);
        assert_eq!(When::During(2, 2).last_frame(), 2);
    }

    #[test]
    fn property_builder_accumulates_terms() {
        let s = SignalId::from_index(0);
        let p = IntervalProperty::new("upec", 4)
            .assume(PropertyTerm::at("initial equality", 0, s))
            .assume(PropertyTerm::during("cache monitor", 0, 4, s))
            .prove(PropertyTerm::at("state equality", 4, s));
        assert_eq!(p.assumptions.len(), 2);
        assert_eq!(p.obligations.len(), 1);
        assert_eq!(p.max_frame(), 4);
        let p2 = IntervalProperty::new("longer", 2).prove(PropertyTerm::at("late", 6, s));
        assert_eq!(p2.max_frame(), 6);
    }
}
