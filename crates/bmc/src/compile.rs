//! The transition-relation compiler: cone-of-influence pruning, word-level
//! structural hashing and constant folding, performed **once** per netlist.
//!
//! The seed implementation re-walked the whole [`rtl::Netlist`] — string
//! names, `enum` matching and all — for every time frame of every unrolling.
//! This module separates that work into two phases:
//!
//! 1. **Compile** ([`CompiledTransition::compile`]): one pass over the
//!    netlist produces a dense, topologically ordered *schedule* of
//!    [`CompiledOp`]s. During the pass the compiler
//!    * drops every node outside the [cone of influence](rtl::Coi) of the
//!      declared roots (property signals, constraints, miter outputs),
//!    * **hash-conses** structurally identical nodes (same operator, same
//!      operand slots) onto one slot, so duplicated subterms — ubiquitous in
//!      a two-instance UPEC miter — are encoded once per frame, and
//!    * **constant-folds** nodes whose operands are known at compile time,
//!      together with cheap word-level identities (`x ^ x = 0`,
//!      `mux(c, a, a) = a`, `eq(x, x) = 1`, …).
//! 2. **Clone per frame**: each time frame of an unrolling instantiates the
//!    schedule with fresh literals. The per-frame work is a tight loop over
//!    integer-indexed ops — no netlist traversal, no hashing, no strings.
//!
//! On top of the static schedule, [`crate::Unrolling`] encodes frames
//! *lazily*: a slot is only Tseitin-encoded in a frame when a query
//! (constraint, obligation, model extraction) actually reaches it, which
//! implements the "per property and per frame" part of COI pruning — the
//! final frame of a bounded proof never pays for next-state logic that no
//! deeper frame consumes.

use rtl::{BinaryOp, BitVec, Coi, CoiStats, Netlist, Node, RegisterId, SignalId, UnaryOp};
use std::collections::HashMap;

/// A scheduled operation. Operands are dense *slot* indices into the
/// schedule, not netlist signal ids; every operand slot precedes its user.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompiledOp {
    /// Free primary input: fresh literals in every frame.
    Input {
        /// Bit width.
        width: u32,
    },
    /// Compile-time constant (folded nodes land here too).
    Const(BitVec),
    /// Current-state value of a register. Frame 0 is symbolic / initial /
    /// aliased; frame `t+1` clones the literals of the register's next-state
    /// slot in frame `t`.
    Register {
        /// Register table index.
        register: RegisterId,
        /// Bit width.
        width: u32,
    },
    /// Unary operator over one slot.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand slot.
        a: u32,
    },
    /// Binary operator over two slots.
    Binary {
        /// Operator.
        op: BinaryOp,
        /// Left operand slot.
        a: u32,
        /// Right operand slot.
        b: u32,
    },
    /// Two-way multiplexer.
    Mux {
        /// Single-bit select slot.
        cond: u32,
        /// Slot selected when `cond` is one.
        then_: u32,
        /// Slot selected when `cond` is zero.
        else_: u32,
    },
    /// Bit-field extraction.
    Slice {
        /// Operand slot.
        a: u32,
        /// Most-significant extracted bit.
        hi: u32,
        /// Least-significant extracted bit.
        lo: u32,
    },
    /// Concatenation (`hi` supplies the most-significant bits).
    Concat {
        /// Most-significant operand slot.
        hi: u32,
        /// Least-significant operand slot.
        lo: u32,
    },
}

/// Key for structural hashing: one entry per *defining* operation shape.
/// Inputs and registers are state-carrying and never merge.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum OpKey {
    Const(BitVec),
    Unary(UnaryOp, u32),
    Binary(BinaryOp, u32, u32),
    Mux(u32, u32, u32),
    Slice(u32, u32, u32),
    Concat(u32, u32),
}

/// Counters describing what one [`CompiledTransition::compile`] run did.
#[derive(Debug, Clone, Copy)]
pub struct CompileStats {
    /// Signals in the source netlist.
    pub netlist_signals: usize,
    /// Ops in the compiled schedule (what a frame encodes at most).
    pub scheduled_slots: usize,
    /// Signals dropped because they lie outside the cone of influence.
    pub pruned_signals: usize,
    /// Signals merged onto an existing slot by structural hashing.
    pub hashed_signals: usize,
    /// Signals eliminated by constant folding / word-level identities.
    pub folded_signals: usize,
    /// The underlying cone-of-influence analysis.
    pub coi: CoiStats,
}

impl CompileStats {
    /// Fraction of netlist signals that needed no slot of their own.
    pub fn reduction_percent(&self) -> f64 {
        if self.netlist_signals == 0 {
            return 0.0;
        }
        100.0 * (self.netlist_signals - self.scheduled_slots) as f64 / self.netlist_signals as f64
    }
}

/// A netlist compiled into a dense transition-relation schedule.
///
/// The compiled form is immutable and self-contained (it holds no borrow of
/// the netlist), so one compilation can be shared — via `Arc` — by every
/// unrolling, session and portfolio stripe that proves properties of the
/// same design.
///
/// # Examples
///
/// ```
/// use rtl::{BitVec, Netlist};
/// use bmc::CompiledTransition;
///
/// let mut n = Netlist::new("cnt");
/// let c = n.register_init("c", 4, BitVec::zero(4));
/// let one = n.lit(1, 4);
/// let next = n.add(c.value(), one);
/// n.set_next(c, next);
/// // The same expression built twice: structural hashing folds it away.
/// let dup = n.add(c.value(), one);
/// n.output("c", c.value());
/// n.output("dup", dup);
///
/// let ct = CompiledTransition::compile(&n);
/// assert_eq!(ct.slot_of(next), ct.slot_of(dup));
/// assert!(ct.stats().hashed_signals >= 1);
/// ```
#[derive(Debug, Clone)]
pub struct CompiledTransition {
    ops: Vec<CompiledOp>,
    widths: Vec<u32>,
    /// Signal index → slot (`None` when pruned by COI).
    slot_of: Vec<Option<u32>>,
    /// Register index → slot of its next-state expression (`None` when the
    /// register is outside the cone or has no next-state attached).
    reg_next_slot: Vec<Option<u32>>,
    /// Register index → initial value, if declared.
    reg_init: Vec<Option<BitVec>>,
    stats: CompileStats,
}

impl CompiledTransition {
    /// Compiles the full netlist (every signal is treated as a root).
    ///
    /// Lazy per-frame encoding still prunes dynamically at solve time; use
    /// [`CompiledTransition::compile_with_roots`] to additionally shrink the
    /// static schedule and get meaningful COI statistics.
    pub fn compile(netlist: &Netlist) -> Self {
        Self::build(netlist, None)
    }

    /// Compiles only the cone of influence of `roots`.
    ///
    /// Queries against slots outside the cone fail with
    /// [`crate::UnrollError::NotInSchedule`]; declare every signal a proof
    /// may constrain, commit to or extract.
    pub fn compile_with_roots(netlist: &Netlist, roots: &[SignalId]) -> Self {
        Self::build(netlist, Some(roots))
    }

    fn build(netlist: &Netlist, roots: Option<&[SignalId]>) -> Self {
        let mut span = obs::span("bmc.compile");
        netlist
            .validate()
            .expect("netlist must be valid before compilation");
        let coi = match roots {
            Some(roots) => Coi::of(netlist, roots.iter().copied()),
            None => Coi::of(netlist, netlist.signals()),
        };

        let mut ops: Vec<CompiledOp> = Vec::new();
        let mut widths: Vec<u32> = Vec::new();
        let mut slot_of: Vec<Option<u32>> = vec![None; netlist.len()];
        let mut structural: HashMap<OpKey, u32> = HashMap::new();
        let mut hashed_signals = 0usize;
        let mut folded_signals = 0usize;
        let mut pruned_signals = 0usize;

        let push = |ops: &mut Vec<CompiledOp>, widths: &mut Vec<u32>, op: CompiledOp, w: u32| {
            let slot = u32::try_from(ops.len()).expect("schedule exceeds u32 slots");
            ops.push(op);
            widths.push(w);
            slot
        };

        for id in netlist.signals() {
            if !coi.contains(id) {
                pruned_signals += 1;
                continue;
            }
            let node = netlist.node(id);
            let width = node.width();
            // Operand slots exist: the cone is closed under operands and the
            // netlist is topologically ordered.
            let slot = |sig: SignalId, slot_of: &[Option<u32>]| -> u32 {
                slot_of[sig.index()].expect("operand slot scheduled before use")
            };
            let new_slot = match node {
                Node::Input { width, .. } => Some(push(
                    &mut ops,
                    &mut widths,
                    CompiledOp::Input { width: *width },
                    *width,
                )),
                Node::Const(v) => {
                    let key = OpKey::Const(*v);
                    if let Some(&existing) = structural.get(&key) {
                        hashed_signals += 1;
                        slot_of[id.index()] = Some(existing);
                        None
                    } else {
                        let s = push(&mut ops, &mut widths, CompiledOp::Const(*v), v.width());
                        structural.insert(key, s);
                        Some(s)
                    }
                }
                Node::Register {
                    register, width, ..
                } => Some(push(
                    &mut ops,
                    &mut widths,
                    CompiledOp::Register {
                        register: *register,
                        width: *width,
                    },
                    *width,
                )),
                Node::Unary { op, a, .. } => {
                    let a = slot(*a, &slot_of);
                    if let CompiledOp::Const(av) = &ops[a as usize] {
                        folded_signals += 1;
                        let folded = eval_unary(*op, av);
                        slot_of[id.index()] =
                            Some(intern_const(&mut ops, &mut widths, &mut structural, folded));
                        None
                    } else {
                        let key = OpKey::Unary(*op, a);
                        match structural.get(&key) {
                            Some(&existing) => {
                                hashed_signals += 1;
                                slot_of[id.index()] = Some(existing);
                                None
                            }
                            None => {
                                let s = push(
                                    &mut ops,
                                    &mut widths,
                                    CompiledOp::Unary { op: *op, a },
                                    width,
                                );
                                structural.insert(key, s);
                                Some(s)
                            }
                        }
                    }
                }
                Node::Binary { op, a, b, .. } => {
                    let (mut sa, mut sb) = (slot(*a, &slot_of), slot(*b, &slot_of));
                    if op.is_commutative() && sa > sb {
                        std::mem::swap(&mut sa, &mut sb);
                    }
                    let folded = match (&ops[sa as usize], &ops[sb as usize]) {
                        (CompiledOp::Const(av), CompiledOp::Const(bv)) => {
                            Some(FoldResult::Value(eval_binary(*op, av, bv)))
                        }
                        _ if sa == sb => fold_same_operand(*op, sa, width),
                        _ => None,
                    };
                    match folded {
                        Some(FoldResult::Value(v)) => {
                            folded_signals += 1;
                            slot_of[id.index()] =
                                Some(intern_const(&mut ops, &mut widths, &mut structural, v));
                            None
                        }
                        Some(FoldResult::Alias(s)) => {
                            folded_signals += 1;
                            slot_of[id.index()] = Some(s);
                            None
                        }
                        None => {
                            let key = OpKey::Binary(*op, sa, sb);
                            match structural.get(&key) {
                                Some(&existing) => {
                                    hashed_signals += 1;
                                    slot_of[id.index()] = Some(existing);
                                    None
                                }
                                None => {
                                    let s = push(
                                        &mut ops,
                                        &mut widths,
                                        CompiledOp::Binary {
                                            op: *op,
                                            a: sa,
                                            b: sb,
                                        },
                                        width,
                                    );
                                    structural.insert(key, s);
                                    Some(s)
                                }
                            }
                        }
                    }
                }
                Node::Mux {
                    cond, then_, else_, ..
                } => {
                    let (c, t, e) = (
                        slot(*cond, &slot_of),
                        slot(*then_, &slot_of),
                        slot(*else_, &slot_of),
                    );
                    let alias = match &ops[c as usize] {
                        CompiledOp::Const(cv) => Some(if cv.is_true() { t } else { e }),
                        _ if t == e => Some(t),
                        _ => None,
                    };
                    if let Some(s) = alias {
                        folded_signals += 1;
                        slot_of[id.index()] = Some(s);
                        None
                    } else {
                        let key = OpKey::Mux(c, t, e);
                        match structural.get(&key) {
                            Some(&existing) => {
                                hashed_signals += 1;
                                slot_of[id.index()] = Some(existing);
                                None
                            }
                            None => {
                                let s = push(
                                    &mut ops,
                                    &mut widths,
                                    CompiledOp::Mux {
                                        cond: c,
                                        then_: t,
                                        else_: e,
                                    },
                                    width,
                                );
                                structural.insert(key, s);
                                Some(s)
                            }
                        }
                    }
                }
                Node::Slice { a, hi, lo } => {
                    let sa = slot(*a, &slot_of);
                    if let CompiledOp::Const(av) = &ops[sa as usize] {
                        folded_signals += 1;
                        let folded = av.slice(*hi, *lo);
                        slot_of[id.index()] =
                            Some(intern_const(&mut ops, &mut widths, &mut structural, folded));
                        None
                    } else if *lo == 0 && *hi + 1 == widths[sa as usize] {
                        // Full-width slice: the operand itself.
                        folded_signals += 1;
                        slot_of[id.index()] = Some(sa);
                        None
                    } else {
                        let key = OpKey::Slice(sa, *hi, *lo);
                        match structural.get(&key) {
                            Some(&existing) => {
                                hashed_signals += 1;
                                slot_of[id.index()] = Some(existing);
                                None
                            }
                            None => {
                                let s = push(
                                    &mut ops,
                                    &mut widths,
                                    CompiledOp::Slice {
                                        a: sa,
                                        hi: *hi,
                                        lo: *lo,
                                    },
                                    width,
                                );
                                structural.insert(key, s);
                                Some(s)
                            }
                        }
                    }
                }
                Node::Concat { hi, lo, .. } => {
                    let (sh, sl) = (slot(*hi, &slot_of), slot(*lo, &slot_of));
                    if let (CompiledOp::Const(hv), CompiledOp::Const(lv)) =
                        (&ops[sh as usize], &ops[sl as usize])
                    {
                        folded_signals += 1;
                        let folded = hv.concat(lv);
                        slot_of[id.index()] =
                            Some(intern_const(&mut ops, &mut widths, &mut structural, folded));
                        None
                    } else {
                        let key = OpKey::Concat(sh, sl);
                        match structural.get(&key) {
                            Some(&existing) => {
                                hashed_signals += 1;
                                slot_of[id.index()] = Some(existing);
                                None
                            }
                            None => {
                                let s = push(
                                    &mut ops,
                                    &mut widths,
                                    CompiledOp::Concat { hi: sh, lo: sl },
                                    width,
                                );
                                structural.insert(key, s);
                                Some(s)
                            }
                        }
                    }
                }
            };
            if let Some(s) = new_slot {
                slot_of[id.index()] = Some(s);
            }
        }

        let mut reg_next_slot = vec![None; netlist.register_count()];
        let mut reg_init = vec![None; netlist.register_count()];
        for (index, info) in netlist.registers().iter().enumerate() {
            reg_init[index] = info.init;
            if slot_of[info.signal.index()].is_some() {
                // The cone closure pulled in the next-state expression of
                // every in-cone register, so its slot exists.
                reg_next_slot[index] = info.next.map(|n| {
                    slot_of[n.index()].expect("next-state of an in-cone register is scheduled")
                });
            }
        }

        let stats = CompileStats {
            netlist_signals: netlist.len(),
            scheduled_slots: ops.len(),
            pruned_signals,
            hashed_signals,
            folded_signals,
            coi: coi.stats(),
        };
        span.attr_u64("netlist_signals", stats.netlist_signals as u64);
        span.attr_u64("scheduled_slots", stats.scheduled_slots as u64);
        span.attr_u64("pruned_signals", stats.pruned_signals as u64);
        span.attr_u64("hashed_signals", stats.hashed_signals as u64);
        span.attr_u64("folded_signals", stats.folded_signals as u64);
        Self {
            ops,
            widths,
            slot_of,
            reg_next_slot,
            reg_init,
            stats,
        }
    }

    /// The scheduled operations, in dependency order.
    pub fn ops(&self) -> &[CompiledOp] {
        &self.ops
    }

    /// Number of slots in the schedule.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Result width of a slot.
    pub fn width(&self, slot: u32) -> u32 {
        self.widths[slot as usize]
    }

    /// The slot a netlist signal was compiled to, or `None` when the signal
    /// was pruned by the cone-of-influence analysis.
    pub fn slot_of(&self, signal: SignalId) -> Option<u32> {
        self.slot_of[signal.index()]
    }

    /// Slot of a register's next-state expression.
    pub fn next_slot(&self, register: RegisterId) -> Option<u32> {
        self.reg_next_slot[register.index()]
    }

    /// Declared initial value of a register.
    pub fn init_value(&self, register: RegisterId) -> Option<BitVec> {
        self.reg_init[register.index()]
    }

    /// Compilation counters.
    pub fn stats(&self) -> CompileStats {
        self.stats
    }
}

enum FoldResult {
    /// The node is a compile-time constant.
    Value(BitVec),
    /// The node is identical to an existing slot.
    Alias(u32),
}

/// Identities for `op(x, x)`.
fn fold_same_operand(op: BinaryOp, a: u32, width: u32) -> Option<FoldResult> {
    match op {
        BinaryOp::And | BinaryOp::Or => Some(FoldResult::Alias(a)),
        BinaryOp::Xor | BinaryOp::Sub => Some(FoldResult::Value(BitVec::zero(width))),
        BinaryOp::Eq | BinaryOp::Ule => Some(FoldResult::Value(BitVec::bit(true))),
        BinaryOp::Ne | BinaryOp::Ult | BinaryOp::Slt => Some(FoldResult::Value(BitVec::bit(false))),
        BinaryOp::Add | BinaryOp::Shl | BinaryOp::Shr => None,
    }
}

/// Adds a constant to the schedule, reusing an existing equal constant slot.
fn intern_const(
    ops: &mut Vec<CompiledOp>,
    widths: &mut Vec<u32>,
    structural: &mut HashMap<OpKey, u32>,
    value: BitVec,
) -> u32 {
    let key = OpKey::Const(value);
    if let Some(&slot) = structural.get(&key) {
        return slot;
    }
    let slot = u32::try_from(ops.len()).expect("schedule exceeds u32 slots");
    ops.push(CompiledOp::Const(value));
    widths.push(value.width());
    structural.insert(key, slot);
    slot
}

/// Word-level evaluation of a unary operator (the simulator's semantics).
fn eval_unary(op: UnaryOp, a: &BitVec) -> BitVec {
    match op {
        UnaryOp::Not => a.not(),
        UnaryOp::Neg => a.neg(),
        UnaryOp::ReduceOr => a.reduce_or(),
        UnaryOp::ReduceAnd => a.reduce_and(),
        UnaryOp::ReduceXor => a.reduce_xor(),
    }
}

/// Word-level evaluation of a binary operator (the simulator's semantics).
fn eval_binary(op: BinaryOp, a: &BitVec, b: &BitVec) -> BitVec {
    match op {
        BinaryOp::And => a.and(b),
        BinaryOp::Or => a.or(b),
        BinaryOp::Xor => a.xor(b),
        BinaryOp::Add => a.add(b),
        BinaryOp::Sub => a.sub(b),
        BinaryOp::Eq => a.eq_bit(b),
        BinaryOp::Ne => a.eq_bit(b).not(),
        BinaryOp::Ult => a.ult(b),
        BinaryOp::Ule => a.ule(b),
        BinaryOp::Slt => a.slt(b),
        BinaryOp::Shl => a.shl(b.as_u64().min(u64::from(rtl::MAX_WIDTH)) as u32),
        BinaryOp::Shr => a.shr(b.as_u64().min(u64::from(rtl::MAX_WIDTH)) as u32),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coi_pruning_drops_dead_logic() {
        let mut n = Netlist::new("dead");
        let a = n.input("a", 8);
        let b = n.input("b", 8);
        let live = n.add(a, b);
        let dead = n.sub(a, b); // never reaches the root
        let _dead2 = n.xor(dead, b);
        n.output("live", live);

        let full = CompiledTransition::compile(&n);
        let pruned = CompiledTransition::compile_with_roots(&n, &[live]);
        assert!(pruned.len() < full.len());
        assert!(pruned.slot_of(dead).is_none());
        assert!(pruned.slot_of(live).is_some());
        assert_eq!(pruned.stats().pruned_signals, 2);
    }

    #[test]
    fn structural_hashing_merges_duplicate_subterms() {
        let mut n = Netlist::new("dup");
        let a = n.input("a", 8);
        let b = n.input("b", 8);
        let x = n.add(a, b);
        let y = n.add(a, b);
        let z = n.add(b, a); // commutative: same slot as x
        n.output("x", x);
        n.output("y", y);
        n.output("z", z);
        let ct = CompiledTransition::compile(&n);
        assert_eq!(ct.slot_of(x), ct.slot_of(y));
        assert_eq!(ct.slot_of(x), ct.slot_of(z));
        assert_eq!(ct.stats().hashed_signals, 2);
    }

    #[test]
    fn constant_folding_evaluates_closed_terms() {
        let mut n = Netlist::new("fold");
        let three = n.lit(3, 8);
        let four = n.lit(4, 8);
        let seven = n.add(three, four);
        let a = n.input("a", 8);
        let cond = n.eq(a, a); // folds to the constant 1
        let same = n.mux(cond, seven, a); // constant select folds to 7
        n.output("seven", seven);
        n.output("same", same);
        let ct = CompiledTransition::compile(&n);
        let slot = ct.slot_of(seven).unwrap();
        assert_eq!(
            ct.ops()[slot as usize],
            CompiledOp::Const(BitVec::new(7, 8))
        );
        assert_eq!(ct.slot_of(same), ct.slot_of(seven));
        assert!(ct.stats().folded_signals >= 3);
    }

    #[test]
    fn register_feedback_is_scheduled() {
        let mut n = Netlist::new("cnt");
        let c = n.register_init("c", 4, BitVec::zero(4));
        let one = n.lit(1, 4);
        let next = n.add(c.value(), one);
        n.set_next(c, next);
        n.output("c", c.value());
        let ct = CompiledTransition::compile_with_roots(&n, &[c.value()]);
        let reg = match n.node(c.value()) {
            Node::Register { register, .. } => *register,
            _ => unreachable!(),
        };
        assert_eq!(ct.next_slot(reg), ct.slot_of(next));
        assert_eq!(ct.init_value(reg), Some(BitVec::zero(4)));
    }
}
