//! Temporary probe: per-bound cost of candidate scenarios.

use std::collections::BTreeSet;
use std::time::Instant;
use upec::engine::IncrementalSession;
use upec::{scenarios, SecretScenario, StateClass, UpecModel};

fn scan(
    label: &str,
    model: &UpecModel,
    commitment: &BTreeSet<String>,
    max_k: usize,
    budget_s: u64,
) {
    let mut session = IncrementalSession::new(model, None);
    let start = Instant::now();
    for k in 1..=max_k {
        let t = Instant::now();
        let outcome = session.check_bound(k, commitment);
        let alert = outcome
            .alert()
            .map(|a| format!("{:?}", a.kind))
            .unwrap_or_else(|| "proven".into());
        println!(
            "{label:<24} k={k}: {alert:<8} conflicts={:<8} {:?}",
            outcome.stats().conflicts,
            t.elapsed()
        );
        if start.elapsed().as_secs() > budget_s {
            println!("{label:<24} budget exhausted");
            break;
        }
    }
}

fn main() {
    let which = std::env::args().nth(1).unwrap_or_default();
    let arch = |m: &UpecModel| -> BTreeSet<String> {
        m.pairs_of_class(StateClass::Architectural)
            .map(|p| p.name.clone())
            .collect()
    };

    if which.is_empty() || which == "meltdown-arch" {
        let spec = scenarios::by_id("meltdown").unwrap();
        let model = UpecModel::new(&spec.formal_config(), SecretScenario::InCache);
        scan("meltdown-arch", &model, &arch(&model), 3, 120);
    }
    if which.is_empty() || which == "meltdown-full" {
        let spec = scenarios::by_id("meltdown").unwrap();
        let model = spec.build_model();
        scan(
            "meltdown-full",
            &model,
            &spec.commitment_set(&model),
            3,
            120,
        );
    }
    if which.is_empty() || which == "cache-footprint" {
        let spec = scenarios::by_id("cache-footprint").unwrap();
        let model = spec.build_model();
        scan(
            "cache-footprint",
            &model,
            &spec.commitment_set(&model),
            4,
            120,
        );
    }
    if which.is_empty() || which == "secure-cached-full" {
        let spec = scenarios::by_id("secure-cached").unwrap();
        let model = spec.build_model();
        scan(
            "secure-cached-full",
            &model,
            &spec.commitment_set(&model),
            2,
            120,
        );
    }
    if which.is_empty() || which == "secure-arch" {
        let spec = scenarios::by_id("secure-arch-only").unwrap();
        let model = spec.build_model();
        scan("secure-arch", &model, &spec.commitment_set(&model), 3, 120);
    }
}
