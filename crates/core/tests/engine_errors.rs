//! Regression suite for the typed engine error path: malformed queries on
//! the engine query path surface as [`EngineError`] values from the `try_`
//! APIs instead of panics, and a failed query never poisons the session.

use soc::{SocConfig, SocVariant};
use upec::{EngineError, IncrementalSession, SecretScenario, UpecModel, UpecOptions};

fn tiny_model() -> UpecModel {
    let config = SocConfig::new(SocVariant::Secure)
        .with_registers(4)
        .with_cache_lines(2)
        .with_miss_latency(1)
        .with_store_latency(1);
    UpecModel::new(&config, SecretScenario::NotInCache)
}

#[test]
fn unknown_commitment_registers_are_a_typed_error() {
    let model = tiny_model();
    let mut session = IncrementalSession::with_options(&model, UpecOptions::window(0));
    let commitment = ["no_such_register".to_string()].into_iter().collect();
    let err = session
        .try_check_bound(1, &commitment)
        .expect_err("an unknown register must be rejected");
    match err {
        EngineError::UnknownRegister { name } => assert_eq!(name, "no_such_register"),
        other => panic!("wrong error: {other}"),
    }
}

#[test]
fn empty_commitments_are_a_typed_error() {
    let model = tiny_model();
    let mut session = IncrementalSession::with_options(&model, UpecOptions::window(0));
    let err = session
        .try_check_bound(1, &Default::default())
        .expect_err("a vacuous obligation must be rejected");
    assert!(matches!(err, EngineError::EmptyCommitment), "{err}");
}

#[test]
fn a_rejected_query_does_not_poison_the_session() {
    let model = tiny_model();
    let mut session = IncrementalSession::with_options(&model, UpecOptions::window(0));
    let bogus = ["no_such_register".to_string()].into_iter().collect();
    assert!(session.try_check_bound(1, &bogus).is_err());
    // The same session then answers a well-formed query normally.
    let outcome = session
        .try_check_bound(1, &upec::full_commitment(&model))
        .expect("a well-formed query succeeds after a rejected one");
    assert!(outcome.is_proven(), "outcome: {outcome:?}");
}

#[test]
fn try_with_options_accepts_every_registry_model() {
    // The non-panicking constructor is equivalent to the panicking one on
    // well-formed models (the registry has no malformed constraints).
    let model = tiny_model();
    assert!(IncrementalSession::try_with_options(&model, UpecOptions::window(0)).is_ok());
}

#[test]
fn engine_errors_render_stable_messages() {
    // The Display strings are part of the API surface (bench binaries and
    // the verify script grep them); pin the wording.
    assert_eq!(
        EngineError::EmptyCommitment.to_string(),
        "commitment must not be empty"
    );
    assert_eq!(
        EngineError::UnknownRegister {
            name: "x".to_string()
        }
        .to_string(),
        "commitment refers to unknown register `x`"
    );
    assert_eq!(
        EngineError::CertificationUnavailable.to_string(),
        "certified queries need a session opened with UpecOptions::with_certificates()"
    );
}
