//! The Orc attack (paper Fig. 2): a read-after-write hazard in the
//! core-to-cache interface is turned into a timing covert channel that leaks
//! the low bits of a PMP-protected secret.
//!
//! The attack program is run on both the Orc-vulnerable design variant and
//! the original (secure) design. On the vulnerable design the measured
//! execution time depends on whether the attacker's guess collides with the
//! secret's cache index; on the secure design the timing is constant.
//!
//! ```text
//! cargo run --release --example orc_attack
//! ```

use soc::{Instruction, Program, SocConfig, SocSim, SocVariant};

/// Builds one iteration of the paper's Fig. 2 for a given guess.
///
/// ```text
/// 1: li   x1, #protected_addr
/// 2: li   x2, #accessible_addr
/// 3: addi x2, x2, #test_value
/// 4: sw   x3, 0(x2)
/// 5: lw   x4, 0(x1)        ; illegal access, will trap
/// 6: lw   x5, 0(x4)        ; transient, address = secret
/// ```
fn attack_program(config: &SocConfig, test_value: u32) -> Program {
    let accessible = 0x40u32; // cache-index-aligned user array
    let mut p = Program::new(0);
    p.push(Instruction::Addi {
        rd: 1,
        rs1: 0,
        imm: config.secret_addr as i32,
    });
    p.push(Instruction::Addi {
        rd: 2,
        rs1: 0,
        imm: accessible as i32,
    });
    p.push(Instruction::Addi {
        rd: 2,
        rs1: 2,
        imm: (test_value * 4) as i32,
    });
    p.push(Instruction::Sw {
        rs1: 2,
        rs2: 3,
        offset: 0,
    });
    p.push(Instruction::Lw {
        rd: 4,
        rs1: 1,
        offset: 0,
    });
    p.push(Instruction::Lw {
        rd: 5,
        rs1: 4,
        offset: 0,
    });
    p.push_nops(2);
    p
}

/// Runs one attack iteration and returns the cycles until the trap is taken.
fn measure(variant: SocVariant, secret: u32, test_value: u32) -> u64 {
    let config = SocConfig::new(variant);
    let program = attack_program(&config, test_value);
    let mut sim = SocSim::new(config.clone(), program);
    sim.protect_secret_region();
    sim.preload_secret_in_cache(secret);
    sim.run_until_trap(300).expect("the illegal load must trap")
}

fn main() {
    // The secret's low bits select a cache line; the attacker guesses them.
    let config = SocConfig::new(SocVariant::Orc);
    let lines = config.cache_lines;
    let secret = 0x184; // word address 0x61 -> cache index 1 (with 4 lines)
    let secret_index = (secret >> 2) % lines;
    // The attacker's own illegal probe (instruction #5) reads the protected
    // address, whose cache index is public knowledge; the guess colliding
    // with it always stalls and is calibrated away, exactly like a real
    // attacker would.
    let known_conflict = (config.secret_addr >> 2) % lines;

    for variant in [SocVariant::Orc, SocVariant::Secure] {
        println!("--- {} design ---", variant.name());
        let mut timings = Vec::new();
        for guess in 0..lines {
            let cycles = measure(variant, secret, guess);
            let note = if guess == known_conflict {
                " (known self-conflict, ignored)"
            } else {
                ""
            };
            timings.push((guess, cycles));
            println!("guess index {guess}: {cycles} cycles until the exception{note}");
        }
        let usable: Vec<_> = timings
            .iter()
            .filter(|&&(g, _)| g != known_conflict)
            .collect();
        let max = usable.iter().map(|&&(_, c)| c).max().unwrap();
        let min = usable.iter().map(|&&(_, c)| c).min().unwrap();
        if max != min {
            let (leaked, _) = usable.iter().find(|&&&(_, c)| c == max).unwrap();
            println!(
                "timing difference of {} cycles leaks the secret's cache index: {} (actual {})",
                max - min,
                leaked,
                secret_index
            );
            assert_eq!(*leaked, secret_index);
            assert_eq!(variant, SocVariant::Orc, "only the Orc variant may leak");
        } else {
            println!("constant timing: no covert channel observable");
            assert_eq!(variant, SocVariant::Secure);
        }
        // In neither design does the secret architecturally reach a register.
        let config = SocConfig::new(variant);
        let mut sim = SocSim::new(config.clone(), attack_program(&config, 0));
        sim.protect_secret_region();
        sim.preload_secret_in_cache(secret);
        sim.run(100);
        assert_eq!(sim.reg(4), 0, "x4 never receives the secret");
    }
    println!("\nThe Orc covert channel exists without any architectural leak —");
    println!("exactly the class of vulnerability UPEC detects exhaustively.");
}
